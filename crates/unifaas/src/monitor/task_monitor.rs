//! Task monitor and history database (§IV-B).
//!
//! Every completed task streams a [`TaskRecord`] into the monitor, which
//! keeps (a) per-(function, endpoint) success statistics for the fault
//! tolerance policy and (b) an append-only [`HistoryDb`] that the profilers
//! train on. The history database persists as a plain CSV file so a later
//! run can "start a workflow by loading an existing database" and pre-build
//! performance models.

use fedci::endpoint::EndpointId;
use simkit::OnlineStats;
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// One observed task execution (or transfer — the transfer profiler reuses
/// this structure with `function_name = "__transfer__/<src>/<dst>"`).
#[derive(Clone, Debug, PartialEq)]
pub struct TaskRecord {
    /// Name of the function executed. Shared (`Arc<str>`) so the runtime's
    /// per-completion observation clones an interned name instead of
    /// allocating a fresh `String` per task.
    pub function: Arc<str>,
    /// Endpoint it ran on.
    pub endpoint: EndpointId,
    /// Total input bytes (dependency outputs + external inputs).
    pub input_bytes: u64,
    /// Observed wall time, seconds.
    pub duration_seconds: f64,
    /// Bytes produced.
    pub output_bytes: u64,
    /// Endpoint hardware features at execution time.
    pub cores: u32,
    /// CPU frequency, GHz.
    pub cpu_ghz: f64,
    /// RAM, GB.
    pub ram_gb: u32,
    /// Whether the attempt succeeded.
    pub success: bool,
}

/// Append-only store of task records.
#[derive(Clone, Debug, Default)]
pub struct HistoryDb {
    records: Vec<TaskRecord>,
}

impl HistoryDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        HistoryDb::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: TaskRecord) {
        self.records.push(rec);
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Saves as CSV (header + one row per record).
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(
            w,
            "function,endpoint,input_bytes,duration_seconds,output_bytes,cores,cpu_ghz,ram_gb,success"
        )?;
        for r in &self.records {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{}",
                escape_csv(&r.function),
                r.endpoint.0,
                r.input_bytes,
                r.duration_seconds,
                r.output_bytes,
                r.cores,
                r.cpu_ghz,
                r.ram_gb,
                r.success
            )?;
        }
        w.flush()
    }

    /// Loads a CSV written by [`HistoryDb::save_csv`].
    ///
    /// Quote-aware: a record may span multiple physical lines when the
    /// function name contains embedded newlines (RFC 4180 quoting).
    pub fn load_csv<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut db = HistoryDb::new();
        for (i, fields) in CsvRecords::new(&text).enumerate() {
            let fields = fields?;
            if i == 0 {
                continue; // header
            }
            if fields.len() != 9 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("record {} has {} fields, expected 9", i + 1, fields.len()),
                ));
            }
            let parse_err = |what: &str| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("record {}: bad {what}", i + 1),
                )
            };
            db.push(TaskRecord {
                function: Arc::from(fields[0].as_str()),
                endpoint: EndpointId(fields[1].parse().map_err(|_| parse_err("endpoint"))?),
                input_bytes: fields[2].parse().map_err(|_| parse_err("input_bytes"))?,
                duration_seconds: fields[3]
                    .parse()
                    .map_err(|_| parse_err("duration_seconds"))?,
                output_bytes: fields[4].parse().map_err(|_| parse_err("output_bytes"))?,
                cores: fields[5].parse().map_err(|_| parse_err("cores"))?,
                cpu_ghz: fields[6].parse().map_err(|_| parse_err("cpu_ghz"))?,
                ram_gb: fields[7].parse().map_err(|_| parse_err("ram_gb"))?,
                success: fields[8].parse().map_err(|_| parse_err("success"))?,
            });
        }
        Ok(db)
    }
}

/// RFC 4180 field escaping: fields containing a comma, quote, CR or LF are
/// wrapped in double quotes with embedded quotes doubled; everything else
/// passes through unchanged so the common case stays grep-friendly.
fn escape_csv(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Iterator over CSV records, splitting on newlines *outside* quoted fields
/// so a quoted field may contain commas, doubled quotes and line breaks.
struct CsvRecords<'a> {
    rest: std::str::Chars<'a>,
    done: bool,
}

impl<'a> CsvRecords<'a> {
    fn new(text: &'a str) -> Self {
        CsvRecords {
            rest: text.chars(),
            done: false,
        }
    }
}

impl Iterator for CsvRecords<'_> {
    type Item = std::io::Result<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let bad = |msg: &str| {
            Some(Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                msg.to_string(),
            )))
        };
        let mut fields: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut saw_any = false;
        let mut in_quotes = false;
        loop {
            let Some(ch) = self.rest.next() else {
                if in_quotes {
                    return bad("unterminated quoted field");
                }
                self.done = true;
                if !saw_any && fields.is_empty() && field.is_empty() {
                    return None; // trailing newline at EOF, no final record
                }
                fields.push(field);
                return Some(Ok(fields));
            };
            saw_any = true;
            if in_quotes {
                if ch == '"' {
                    // Either a doubled quote (literal `"`) or the closing one.
                    let mut peek = self.rest.clone();
                    if peek.next() == Some('"') {
                        self.rest = peek;
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    field.push(ch);
                }
                continue;
            }
            match ch {
                '"' if field.is_empty() => in_quotes = true,
                '"' => return bad("quote inside unquoted field"),
                ',' => fields.push(std::mem::take(&mut field)),
                '\r' => {} // tolerate CRLF line endings
                '\n' => {
                    if fields.is_empty() && field.is_empty() {
                        // Blank line: skip rather than yield an empty record.
                        saw_any = false;
                        continue;
                    }
                    fields.push(field);
                    return Some(Ok(fields));
                }
                _ => field.push(ch),
            }
        }
    }
}

/// Live aggregation over the record stream.
///
/// Function names are interned to dense `u32` ids so the per-record and
/// per-query paths hash a fixed-size integer key instead of allocating
/// and hashing an owned `String` — `observe` runs once per completed
/// task and `mean_duration` once per prediction, so both are hot at the
/// million-task scale.
#[derive(Clone, Debug, Default)]
pub struct TaskMonitor {
    db: HistoryDb,
    /// Function name → interned id (index into `names`).
    name_ids: HashMap<String, u32>,
    /// Interned id → function name.
    names: Vec<String>,
    /// (interned function, endpoint) → duration stats.
    duration_stats: HashMap<(u32, EndpointId), OnlineStats>,
    /// endpoint → (successes, attempts) for the reassignment policy.
    success_counts: HashMap<EndpointId, (u64, u64)>,
}

impl TaskMonitor {
    /// Creates a monitor, optionally seeded with a prior history database.
    pub fn new(history: Option<HistoryDb>) -> Self {
        let mut m = TaskMonitor::default();
        if let Some(db) = history {
            for rec in db.records().to_vec() {
                m.observe(rec);
            }
        }
        m
    }

    /// Interned id of `function`, allocating only on first sight.
    fn intern(&mut self, function: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(function) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(function.to_string());
        self.name_ids.insert(function.to_string(), id);
        id
    }

    /// Streams in one record, updating all aggregates.
    pub fn observe(&mut self, rec: TaskRecord) {
        let entry = self.success_counts.entry(rec.endpoint).or_insert((0, 0));
        entry.1 += 1;
        if rec.success {
            entry.0 += 1;
            let id = self.intern(&rec.function);
            self.duration_stats
                .entry((id, rec.endpoint))
                .or_default()
                .push(rec.duration_seconds);
        }
        self.db.push(rec);
    }

    /// The underlying history database (for persistence and training).
    pub fn history(&self) -> &HistoryDb {
        &self.db
    }

    /// Mean observed duration of `function` on `endpoint`, if any
    /// successful runs exist.
    pub fn mean_duration(&self, function: &str, endpoint: EndpointId) -> Option<f64> {
        let id = *self.name_ids.get(function)?;
        self.duration_stats
            .get(&(id, endpoint))
            .filter(|s| s.count() > 0)
            .map(|s| s.mean())
    }

    /// Task success rate of an endpoint (`None` if never attempted). Drives
    /// §IV-G's "reassigns it to the endpoint with the highest success rate".
    pub fn success_rate(&self, endpoint: EndpointId) -> Option<f64> {
        self.success_counts
            .get(&endpoint)
            .filter(|(_, attempts)| *attempts > 0)
            .map(|(ok, attempts)| *ok as f64 / *attempts as f64)
    }

    /// The endpoint with the highest success rate among `candidates`
    /// (unattempted endpoints count as rate 1.0 — optimistic, matching the
    /// intent of escaping a consistently failing endpoint).
    pub fn best_endpoint_by_success(&self, candidates: &[EndpointId]) -> Option<EndpointId> {
        candidates.iter().copied().max_by(|a, b| {
            let ra = self.success_rate(*a).unwrap_or(1.0);
            let rb = self.success_rate(*b).unwrap_or(1.0);
            ra.partial_cmp(&rb)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Stable tie-break toward the lower id.
                .then(b.0.cmp(&a.0))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(function: &str, ep: u16, dur: f64, success: bool) -> TaskRecord {
        TaskRecord {
            function: function.into(),
            endpoint: EndpointId(ep),
            input_bytes: 1000,
            duration_seconds: dur,
            output_bytes: 500,
            cores: 16,
            cpu_ghz: 2.6,
            ram_gb: 64,
            success,
        }
    }

    #[test]
    fn aggregates_duration_per_function_endpoint() {
        let mut m = TaskMonitor::default();
        m.observe(rec("dock", 0, 10.0, true));
        m.observe(rec("dock", 0, 20.0, true));
        m.observe(rec("dock", 1, 5.0, true));
        assert_eq!(m.mean_duration("dock", EndpointId(0)), Some(15.0));
        assert_eq!(m.mean_duration("dock", EndpointId(1)), Some(5.0));
        assert_eq!(m.mean_duration("dock", EndpointId(2)), None);
        assert_eq!(m.mean_duration("other", EndpointId(0)), None);
    }

    #[test]
    fn failed_runs_do_not_pollute_duration_stats() {
        let mut m = TaskMonitor::default();
        m.observe(rec("dock", 0, 999.0, false));
        assert_eq!(m.mean_duration("dock", EndpointId(0)), None);
        assert_eq!(m.success_rate(EndpointId(0)), Some(0.0));
    }

    #[test]
    fn success_rates_and_best_endpoint() {
        let mut m = TaskMonitor::default();
        for _ in 0..8 {
            m.observe(rec("f", 0, 1.0, true));
        }
        m.observe(rec("f", 0, 1.0, false));
        m.observe(rec("f", 0, 1.0, false)); // ep0: 8/10
        m.observe(rec("f", 1, 1.0, true)); // ep1: 1/1
        assert!((m.success_rate(EndpointId(0)).unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(m.success_rate(EndpointId(1)), Some(1.0));
        assert_eq!(m.success_rate(EndpointId(9)), None);
        assert_eq!(
            m.best_endpoint_by_success(&[EndpointId(0), EndpointId(1)]),
            Some(EndpointId(1))
        );
        // Unattempted endpoints are optimistic (rate 1.0), lower id wins tie.
        assert_eq!(
            m.best_endpoint_by_success(&[EndpointId(0), EndpointId(5), EndpointId(6)]),
            Some(EndpointId(5))
        );
        assert_eq!(m.best_endpoint_by_success(&[]), None);
    }

    #[test]
    fn csv_roundtrip() {
        let mut db = HistoryDb::new();
        db.push(rec("dock", 0, 12.5, true));
        db.push(rec("fingerprint", 3, 0.75, false));
        let path = std::env::temp_dir().join("unifaas_history_test.csv");
        db.save_csv(&path).unwrap();
        let loaded = HistoryDb::load_csv(&path).unwrap();
        assert_eq!(loaded.records(), db.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let path = std::env::temp_dir().join("unifaas_history_bad.csv");
        std::fs::write(&path, "header\nonly,three,fields\n").unwrap();
        assert!(HistoryDb::load_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn monitor_seeds_from_history() {
        let mut db = HistoryDb::new();
        db.push(rec("dock", 0, 10.0, true));
        let m = TaskMonitor::new(Some(db));
        assert_eq!(m.mean_duration("dock", EndpointId(0)), Some(10.0));
        assert_eq!(m.history().len(), 1);
    }

    #[test]
    fn function_names_with_commas_quotes_newlines_roundtrip() {
        let names = [
            "weird,name",
            "say \"hi\"",
            "multi\nline",
            "all,of\r\nthe \"above\", twice\n\"\"",
            "trailing,",
            ",leading",
            "\"fully quoted\"",
            "plain_name",
        ];
        let mut db = HistoryDb::new();
        for (i, name) in names.iter().enumerate() {
            db.push(rec(name, i as u16, 1.0 + i as f64, i % 2 == 0));
        }
        let path = std::env::temp_dir().join("unifaas_history_comma.csv");
        db.save_csv(&path).unwrap();
        let loaded = HistoryDb::load_csv(&path).unwrap();
        assert_eq!(loaded.records(), db.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_unterminated_quote() {
        let path = std::env::temp_dir().join("unifaas_history_unterminated.csv");
        std::fs::write(&path, "header\n\"open,0,1,1.0,1,1,1.0,1,true\n").unwrap();
        assert!(HistoryDb::load_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
