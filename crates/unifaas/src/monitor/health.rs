//! Endpoint health tracking.
//!
//! funcX-style fabrics treat endpoint churn as a first-class failure mode:
//! an endpoint may stop heartbeating, come back, or silently eat tasks.
//! This module keeps a per-endpoint liveness state machine,
//!
//! ```text
//!            failures ≥ suspect_after      failures ≥ down_after
//!   Healthy ─────────────────────► Suspect ─────────────────────► Down
//!      ▲                              │                            │
//!      │ success                      │ success (reset)            │ liveness
//!      │                              ▼                            ▼ restored
//!      └───────────────────────── Healthy ◄──────────────────  Recovering
//!                                           probes ≥ recover_after
//! ```
//!
//! fed by whichever liveness signal the runtime has: deterministic outage
//! windows in the simulator ([`HealthMonitor::mark_down`] /
//! [`HealthMonitor::mark_recovering`]), or real probe results in the live
//! runtime ([`HealthMonitor::record_failure`] /
//! [`HealthMonitor::record_success`]).
//!
//! Schedulers consult [`HealthMonitor::is_schedulable`]: only `Down`
//! excludes an endpoint from candidate sets. `Suspect` endpoints still
//! receive work (a single crash should not drain a queue), and
//! `Recovering` endpoints are re-admitted immediately so capacity returns
//! as soon as liveness does. The monitor itself draws no randomness and
//! allocates nothing on the query path, so consulting it is free and —
//! crucially for the bit-identical zero-fault guarantee — a monitor that
//! never leaves `Healthy` changes no scheduling decision.

use fedci::endpoint::EndpointId;

/// Liveness state of one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// Recent consecutive failures; still schedulable but under watch.
    Suspect,
    /// Considered disconnected: excluded from scheduling.
    Down,
    /// Liveness restored; schedulable, promoted to Healthy after
    /// consecutive successes.
    Recovering,
}

impl HealthState {
    /// Stable numeric code for trace instants (the trace layer cannot
    /// depend on this crate's types).
    pub fn code(self) -> u32 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Down => 2,
            HealthState::Recovering => 3,
        }
    }
}

/// Thresholds for the health state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Consecutive failures that move Healthy → Suspect.
    pub suspect_after: u32,
    /// Consecutive failures that move Suspect → Down.
    pub down_after: u32,
    /// Consecutive successes that move Recovering → Healthy.
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 1,
            down_after: 3,
            recover_after: 1,
        }
    }
}

/// Per-endpoint health state machine (see module docs for the diagram).
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    states: Vec<HealthState>,
    consecutive_failures: Vec<u32>,
    consecutive_successes: Vec<u32>,
    /// Total state transitions observed (all endpoints).
    transitions: u64,
}

impl HealthMonitor {
    /// A monitor for `n` endpoints, all initially Healthy.
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, HealthPolicy::default())
    }

    /// A monitor with explicit thresholds.
    pub fn with_policy(n: usize, policy: HealthPolicy) -> Self {
        assert!(policy.down_after >= policy.suspect_after);
        assert!(policy.recover_after >= 1);
        HealthMonitor {
            policy,
            states: vec![HealthState::Healthy; n],
            consecutive_failures: vec![0; n],
            consecutive_successes: vec![0; n],
            transitions: 0,
        }
    }

    /// Current state of `ep`.
    pub fn state(&self, ep: EndpointId) -> HealthState {
        self.states[ep.index()]
    }

    /// True if `ep` is Down (and must be excluded from placement).
    pub fn is_down(&self, ep: EndpointId) -> bool {
        self.states[ep.index()] == HealthState::Down
    }

    /// True if `ep` may receive placements (anything but Down).
    pub fn is_schedulable(&self, ep: EndpointId) -> bool {
        !self.is_down(ep)
    }

    /// True if no endpoint is Down.
    pub fn all_schedulable(&self) -> bool {
        self.states.iter().all(|s| *s != HealthState::Down)
    }

    /// Total state transitions observed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn set(&mut self, ep: EndpointId, next: HealthState) -> Option<HealthState> {
        let cur = &mut self.states[ep.index()];
        if *cur == next {
            return None;
        }
        *cur = next;
        self.transitions += 1;
        Some(next)
    }

    /// Records a successful interaction (completed task, answered probe).
    /// Returns the new state if this caused a transition.
    pub fn record_success(&mut self, ep: EndpointId) -> Option<HealthState> {
        let i = ep.index();
        self.consecutive_failures[i] = 0;
        match self.states[i] {
            HealthState::Healthy => None,
            HealthState::Suspect => self.set(ep, HealthState::Healthy),
            // A success from a Down endpoint is itself evidence of liveness.
            HealthState::Down => {
                self.consecutive_successes[i] = 1;
                let next = if self.policy.recover_after <= 1 {
                    HealthState::Healthy
                } else {
                    HealthState::Recovering
                };
                self.set(ep, next)
            }
            HealthState::Recovering => {
                self.consecutive_successes[i] += 1;
                if self.consecutive_successes[i] >= self.policy.recover_after {
                    self.set(ep, HealthState::Healthy)
                } else {
                    None
                }
            }
        }
    }

    /// Records a failed interaction (crashed task, missed probe).
    /// Returns the new state if this caused a transition.
    pub fn record_failure(&mut self, ep: EndpointId) -> Option<HealthState> {
        let i = ep.index();
        self.consecutive_successes[i] = 0;
        self.consecutive_failures[i] = self.consecutive_failures[i].saturating_add(1);
        let failures = self.consecutive_failures[i];
        match self.states[i] {
            HealthState::Down => None,
            _ if failures >= self.policy.down_after => self.set(ep, HealthState::Down),
            HealthState::Healthy | HealthState::Recovering
                if failures >= self.policy.suspect_after =>
            {
                self.set(ep, HealthState::Suspect)
            }
            _ => None,
        }
    }

    /// Forces `ep` Down — used when the liveness source is authoritative
    /// (a simulated outage window opening, an operator draining a pool).
    pub fn mark_down(&mut self, ep: EndpointId) -> Option<HealthState> {
        let i = ep.index();
        self.consecutive_failures[i] = self.policy.down_after;
        self.consecutive_successes[i] = 0;
        self.set(ep, HealthState::Down)
    }

    /// Marks `ep` as Recovering — liveness restored, schedulable again.
    pub fn mark_recovering(&mut self, ep: EndpointId) -> Option<HealthState> {
        let i = ep.index();
        self.consecutive_failures[i] = 0;
        self.consecutive_successes[i] = 0;
        self.set(ep, HealthState::Recovering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u16) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn starts_healthy_and_schedulable() {
        let m = HealthMonitor::new(3);
        for i in 0..3 {
            assert_eq!(m.state(ep(i)), HealthState::Healthy);
            assert!(m.is_schedulable(ep(i)));
        }
        assert!(m.all_schedulable());
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn failures_escalate_healthy_suspect_down() {
        let mut m = HealthMonitor::new(1);
        assert_eq!(m.record_failure(ep(0)), Some(HealthState::Suspect));
        assert!(m.is_schedulable(ep(0)), "suspect still schedulable");
        assert_eq!(m.record_failure(ep(0)), None);
        assert_eq!(m.record_failure(ep(0)), Some(HealthState::Down));
        assert!(!m.is_schedulable(ep(0)));
        assert!(!m.all_schedulable());
        // Further failures while Down are absorbed.
        assert_eq!(m.record_failure(ep(0)), None);
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn success_resets_suspect() {
        let mut m = HealthMonitor::new(1);
        m.record_failure(ep(0));
        assert_eq!(m.record_success(ep(0)), Some(HealthState::Healthy));
        // The failure streak restarts from zero.
        assert_eq!(m.record_failure(ep(0)), Some(HealthState::Suspect));
        assert_eq!(m.record_failure(ep(0)), None);
    }

    #[test]
    fn recovery_needs_configured_probe_count() {
        let policy = HealthPolicy {
            suspect_after: 1,
            down_after: 2,
            recover_after: 3,
        };
        let mut m = HealthMonitor::with_policy(1, policy);
        m.mark_down(ep(0));
        assert_eq!(m.state(ep(0)), HealthState::Down);
        assert_eq!(m.record_success(ep(0)), Some(HealthState::Recovering));
        assert!(m.is_schedulable(ep(0)), "recovering is schedulable");
        assert_eq!(m.record_success(ep(0)), None);
        assert_eq!(m.record_success(ep(0)), Some(HealthState::Healthy));
    }

    #[test]
    fn failure_during_recovery_demotes() {
        let policy = HealthPolicy {
            suspect_after: 1,
            down_after: 2,
            recover_after: 2,
        };
        let mut m = HealthMonitor::with_policy(1, policy);
        m.mark_down(ep(0));
        m.record_success(ep(0));
        assert_eq!(m.state(ep(0)), HealthState::Recovering);
        assert_eq!(m.record_failure(ep(0)), Some(HealthState::Suspect));
        assert_eq!(m.record_failure(ep(0)), Some(HealthState::Down));
    }

    #[test]
    fn mark_down_and_recovering_are_authoritative() {
        let mut m = HealthMonitor::new(2);
        assert_eq!(m.mark_down(ep(1)), Some(HealthState::Down));
        assert_eq!(m.mark_down(ep(1)), None, "idempotent");
        assert_eq!(m.mark_recovering(ep(1)), Some(HealthState::Recovering));
        assert!(m.is_schedulable(ep(1)));
        // Default policy promotes after one success.
        assert_eq!(m.record_success(ep(1)), Some(HealthState::Healthy));
        assert_eq!(m.state(ep(0)), HealthState::Healthy, "other ep untouched");
    }

    #[test]
    fn success_from_down_is_liveness_evidence() {
        let mut m = HealthMonitor::new(1);
        m.mark_down(ep(0));
        assert_eq!(m.record_success(ep(0)), Some(HealthState::Healthy));
    }
}
