//! The endpoint monitor and its *local mocking mechanism* (§IV-B).
//!
//! Polling the FaaS service for endpoint status is slow (updates arrive
//! every minute) and loads the service. UniFaaS instead keeps a **mock
//! endpoint** per real endpoint: a client-side proxy updated synchronously
//! on every submit ("a mock task is pushed into the task queue of the mock
//! endpoint and the number of idle workers is decreased") and on every
//! result ("the mock task is popped"). The mocks are periodically
//! re-synchronized with ground truth so drift (capacity changes, preempted
//! tasks) is bounded by the sync interval.

use fedci::endpoint::EndpointId;

/// Client-side proxy of one endpoint's state.
#[derive(Clone, Debug)]
pub struct MockEndpoint {
    /// The real endpoint this mirrors.
    pub id: EndpointId,
    /// Label from the config.
    pub label: String,
    /// Believed provisioned workers.
    pub active_workers: usize,
    /// Mock task queue length: tasks submitted but whose results have not
    /// been observed yet (busy workers + in-flight dispatches + endpoint
    /// queue).
    pub outstanding_tasks: usize,
    /// Predicted seconds of work outstanding (used by DHA's
    /// earliest-finish-time estimate).
    pub outstanding_work_seconds: f64,
    /// Believed workers still waiting in the batch queue.
    pub pending_workers: usize,
    /// Cluster speed factor (cached from config for prediction).
    pub speed_factor: f64,
}

impl MockEndpoint {
    /// Creates a mock initialized from the real endpoint's startup state
    /// (the endpoint monitor "communicates with the funcX service to
    /// retrieve initial information").
    pub fn new(id: EndpointId, label: &str, active_workers: usize, speed_factor: f64) -> Self {
        MockEndpoint {
            id,
            label: label.to_string(),
            active_workers,
            outstanding_tasks: 0,
            outstanding_work_seconds: 0.0,
            pending_workers: 0,
            speed_factor,
        }
    }

    /// Believed idle workers (never negative).
    pub fn idle_workers(&self) -> usize {
        self.active_workers.saturating_sub(self.outstanding_tasks)
    }

    /// Push a mock task (called at dispatch time).
    pub fn push_task(&mut self, predicted_seconds: f64) {
        self.outstanding_tasks += 1;
        self.outstanding_work_seconds += predicted_seconds.max(0.0);
    }

    /// Pop a mock task (called when the result is observed).
    pub fn pop_task(&mut self, predicted_seconds: f64) {
        debug_assert!(self.outstanding_tasks > 0, "pop on empty mock queue");
        self.outstanding_tasks = self.outstanding_tasks.saturating_sub(1);
        self.outstanding_work_seconds =
            (self.outstanding_work_seconds - predicted_seconds.max(0.0)).max(0.0);
    }

    /// Estimated seconds until a worker frees up for a *new* task: zero if
    /// idle workers exist, otherwise outstanding work spread over workers.
    pub fn est_availability_seconds(&self) -> f64 {
        if self.idle_workers() > 0 {
            0.0
        } else if self.active_workers == 0 {
            f64::INFINITY
        } else {
            self.outstanding_work_seconds / self.active_workers as f64
        }
    }

    /// Re-synchronizes with ground truth (periodic sync with the service).
    pub fn sync(
        &mut self,
        active_workers: usize,
        outstanding_tasks: usize,
        pending_workers: usize,
    ) {
        self.active_workers = active_workers;
        self.outstanding_tasks = outstanding_tasks;
        self.pending_workers = pending_workers;
    }
}

/// The set of mock endpoints, indexed by endpoint id.
#[derive(Clone, Debug, Default)]
pub struct EndpointMonitor {
    mocks: Vec<MockEndpoint>,
}

impl EndpointMonitor {
    /// Creates a monitor over the given mocks (one per configured
    /// endpoint, in id order).
    pub fn new(mocks: Vec<MockEndpoint>) -> Self {
        for (i, m) in mocks.iter().enumerate() {
            assert_eq!(m.id.index(), i, "mocks must be in endpoint-id order");
        }
        EndpointMonitor { mocks }
    }

    /// Immutable view of one mock.
    pub fn mock(&self, id: EndpointId) -> &MockEndpoint {
        &self.mocks[id.index()]
    }

    /// Mutable view of one mock.
    pub fn mock_mut(&mut self, id: EndpointId) -> &mut MockEndpoint {
        &mut self.mocks[id.index()]
    }

    /// All mocks in id order.
    pub fn mocks(&self) -> &[MockEndpoint] {
        &self.mocks
    }

    /// Ids of endpoints believed to have idle workers.
    pub fn endpoints_with_idle(&self) -> Vec<EndpointId> {
        self.mocks
            .iter()
            .filter(|m| m.idle_workers() > 0)
            .map(|m| m.id)
            .collect()
    }

    /// Total believed capacity (sum of active workers).
    pub fn total_capacity(&self) -> usize {
        self.mocks.iter().map(|m| m.active_workers).sum()
    }

    /// Total outstanding mock tasks.
    pub fn total_outstanding(&self) -> usize {
        self.mocks.iter().map(|m| m.outstanding_tasks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> EndpointMonitor {
        EndpointMonitor::new(vec![
            MockEndpoint::new(EndpointId(0), "a", 4, 1.0),
            MockEndpoint::new(EndpointId(1), "b", 2, 1.4),
        ])
    }

    #[test]
    fn push_pop_tracks_idle() {
        let mut m = monitor();
        assert_eq!(m.mock(EndpointId(0)).idle_workers(), 4);
        m.mock_mut(EndpointId(0)).push_task(10.0);
        m.mock_mut(EndpointId(0)).push_task(10.0);
        assert_eq!(m.mock(EndpointId(0)).idle_workers(), 2);
        assert_eq!(m.mock(EndpointId(0)).outstanding_work_seconds, 20.0);
        m.mock_mut(EndpointId(0)).pop_task(10.0);
        assert_eq!(m.mock(EndpointId(0)).idle_workers(), 3);
        assert_eq!(m.total_outstanding(), 1);
    }

    #[test]
    fn idle_never_negative() {
        let mut m = monitor();
        for _ in 0..10 {
            m.mock_mut(EndpointId(1)).push_task(1.0);
        }
        assert_eq!(m.mock(EndpointId(1)).idle_workers(), 0);
    }

    #[test]
    fn availability_estimate() {
        let mut m = monitor();
        assert_eq!(m.mock(EndpointId(0)).est_availability_seconds(), 0.0);
        // Saturate: 4 workers, 8 tasks of 10 s → 80 s work / 4 workers = 20.
        for _ in 0..8 {
            m.mock_mut(EndpointId(0)).push_task(10.0);
        }
        assert!((m.mock(EndpointId(0)).est_availability_seconds() - 20.0).abs() < 1e-9);
        // Zero-worker endpoint is never available.
        let zero = MockEndpoint::new(EndpointId(0), "z", 0, 1.0);
        assert!(zero.est_availability_seconds().is_infinite());
    }

    #[test]
    fn sync_corrects_drift() {
        let mut m = monitor();
        m.mock_mut(EndpointId(0)).push_task(5.0);
        // Real state: capacity shrank to 2, only 1 task outstanding.
        m.mock_mut(EndpointId(0)).sync(2, 1, 3);
        let mock = m.mock(EndpointId(0));
        assert_eq!(mock.active_workers, 2);
        assert_eq!(mock.outstanding_tasks, 1);
        assert_eq!(mock.pending_workers, 3);
        assert_eq!(mock.idle_workers(), 1);
    }

    #[test]
    fn endpoints_with_idle_filtering() {
        let mut m = monitor();
        for _ in 0..4 {
            m.mock_mut(EndpointId(0)).push_task(1.0);
        }
        assert_eq!(m.endpoints_with_idle(), vec![EndpointId(1)]);
        assert_eq!(m.total_capacity(), 6);
    }

    #[test]
    #[should_panic(expected = "endpoint-id order")]
    fn out_of_order_mocks_panic() {
        EndpointMonitor::new(vec![MockEndpoint::new(EndpointId(1), "b", 1, 1.0)]);
    }
}
