//! The *observe* stage: task and endpoint monitors (§IV-B).

pub mod endpoint_monitor;
pub mod task_monitor;

pub use endpoint_monitor::{EndpointMonitor, MockEndpoint};
pub use task_monitor::{HistoryDb, TaskMonitor, TaskRecord};
