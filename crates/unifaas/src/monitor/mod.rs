//! The *observe* stage: task and endpoint monitors (§IV-B).

pub mod endpoint_monitor;
pub mod health;
pub mod task_monitor;

pub use endpoint_monitor::{EndpointMonitor, MockEndpoint};
pub use health::{HealthMonitor, HealthPolicy, HealthState};
pub use task_monitor::{HistoryDb, TaskMonitor, TaskRecord};
