//! `RemoteFile` objects — the paper's shim layer for wide-area data (§III-A,
//! §IV-E).
//!
//! Python objects above the 10 MB payload limit must travel as
//! `RemoteFile`s; UniFaaS stages them transparently when a consuming task is
//! scheduled. The two subclasses select the transfer mechanism:
//! [`GlobusFile`] and [`RsyncFile`].

use fedci::endpoint::EndpointId;
use fedci::storage::DataId;
use fedci::transfer::TransferMechanism;

/// A handle to a file managed by the UniFaaS data manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteFile {
    /// The data object backing this handle.
    pub data: DataId,
    /// Logical path on the producing endpoint.
    pub path: String,
    /// Size in bytes (0 until produced, for outputs).
    pub bytes: u64,
    /// Endpoint where the file currently canonically lives.
    pub home: EndpointId,
    /// Mechanism used to move this file.
    pub mechanism: TransferMechanism,
}

impl RemoteFile {
    /// Creates a handle for a file that already exists at `home` — the
    /// paper's `GlobusFile.create` flow.
    pub fn create(
        data: DataId,
        path: &str,
        bytes: u64,
        home: EndpointId,
        mechanism: TransferMechanism,
    ) -> Self {
        RemoteFile {
            data,
            path: path.to_string(),
            bytes,
            home,
            mechanism,
        }
    }

    /// The path a task should use to read/write this file on the endpoint
    /// where it executes — the paper's `get_remote_file_path()`. The layout
    /// mirrors a per-endpoint staging directory.
    pub fn remote_path(&self, at: EndpointId) -> String {
        format!("/unifaas/stage/{at}/{}", self.path.trim_start_matches('/'))
    }
}

/// Constructors for Globus-transferred files.
pub struct GlobusFile;

impl GlobusFile {
    /// Creates a Globus-managed remote file.
    pub fn create(data: DataId, path: &str, bytes: u64, home: EndpointId) -> RemoteFile {
        RemoteFile::create(data, path, bytes, home, TransferMechanism::Globus)
    }
}

/// Constructors for rsync-transferred files.
pub struct RsyncFile;

impl RsyncFile {
    /// Creates an rsync-managed remote file.
    pub fn create(data: DataId, path: &str, bytes: u64, home: EndpointId) -> RemoteFile {
        RemoteFile::create(data, path, bytes, home, TransferMechanism::Rsync)
    }
}

/// A directory of remote files moved as a unit (§IV-E's
/// `RemoteDirectory`).
#[derive(Clone, Debug, Default)]
pub struct RemoteDirectory {
    /// Logical directory path.
    pub path: String,
    /// Files inside the directory.
    pub files: Vec<RemoteFile>,
}

impl RemoteDirectory {
    /// Creates an empty remote directory rooted at `path`.
    pub fn new(path: &str) -> Self {
        RemoteDirectory {
            path: path.to_string(),
            files: Vec::new(),
        }
    }

    /// Adds a file (must live under this directory's path).
    pub fn push(&mut self, file: RemoteFile) {
        assert!(
            file.path.starts_with(&self.path),
            "file `{}` is outside directory `{}`",
            file.path,
            self.path
        );
        self.files.push(file);
    }

    /// Total bytes across all member files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globus_and_rsync_mechanisms() {
        let g = GlobusFile::create(DataId(1), "/data/mol.smi", 100, EndpointId(0));
        assert_eq!(g.mechanism, TransferMechanism::Globus);
        let r = RsyncFile::create(DataId(2), "/data/out.bin", 200, EndpointId(1));
        assert_eq!(r.mechanism, TransferMechanism::Rsync);
        assert_eq!(r.bytes, 200);
    }

    #[test]
    fn remote_path_is_per_endpoint() {
        let f = GlobusFile::create(DataId(1), "/data/mol.smi", 100, EndpointId(0));
        assert_eq!(
            f.remote_path(EndpointId(2)),
            "/unifaas/stage/ep2/data/mol.smi"
        );
        assert_ne!(f.remote_path(EndpointId(0)), f.remote_path(EndpointId(1)));
    }

    #[test]
    fn directory_accumulates() {
        let mut d = RemoteDirectory::new("/data");
        d.push(GlobusFile::create(DataId(1), "/data/a", 10, EndpointId(0)));
        d.push(GlobusFile::create(DataId(2), "/data/b", 20, EndpointId(0)));
        assert_eq!(d.total_bytes(), 30);
        assert_eq!(d.files.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside directory")]
    fn directory_rejects_foreign_paths() {
        let mut d = RemoteDirectory::new("/data");
        d.push(GlobusFile::create(DataId(1), "/other/a", 10, EndpointId(0)));
    }
}
