//! Online predictor-accuracy monitoring (the observe leg of §IV-C).
//!
//! The DHA scheduler's placement quality is bounded by how well the
//! execution/transfer profilers predict reality, but nothing in the
//! original loop measures that. [`AccuracyMonitor`] closes the gap: every
//! task and transfer completion records predicted-vs-actual into
//! per-function and per-endpoint-pair error sketches, from which it reports
//! MAPE, signed bias, and p95 absolute relative error — the calibration
//! table surfaced in the run report and exported through the metrics
//! registry. Observations whose error exceeds a configurable threshold are
//! flagged so the runtime can drop drift instants into the trace.

use std::collections::BTreeMap;

use simkit::metrics::MetricsRegistry;
use simkit::stats::OnlineStats;
use simkit::LogHistogram;

use super::{EndpointFeatures, Predictor};
use fedci::endpoint::EndpointId;
use taskgraph::{Dag, TaskId};

/// Default drift threshold: flag observations whose absolute relative
/// error exceeds 25%.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;

/// Error accumulator for one model key (a function, an endpoint, or an
/// endpoint pair).
#[derive(Clone, Debug)]
pub struct ErrorStats {
    abs: LogHistogram,
    signed: OnlineStats,
}

impl Default for ErrorStats {
    fn default() -> Self {
        ErrorStats {
            abs: LogHistogram::new(),
            signed: OnlineStats::new(),
        }
    }
}

impl ErrorStats {
    /// Records one predicted-vs-actual pair and returns the absolute
    /// relative error. The denominator is the actual value, floored at a
    /// nanosecond so instantaneous actuals don't produce infinities.
    pub fn record(&mut self, predicted: f64, actual: f64) -> f64 {
        let denom = actual.abs().max(1e-9);
        let rel = (predicted - actual) / denom;
        self.abs.observe(rel.abs());
        self.signed.push(rel);
        rel.abs()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.abs.count()
    }

    /// Mean absolute percentage error, as a fraction (0.10 = 10%).
    pub fn mape(&self) -> f64 {
        self.abs.mean().unwrap_or(0.0)
    }

    /// Mean signed relative error; positive means the predictor
    /// over-estimates.
    pub fn bias(&self) -> f64 {
        self.signed.mean()
    }

    /// 95th percentile of the absolute relative error (within the
    /// sketch's 2% relative-error bound).
    pub fn p95_abs_err(&self) -> f64 {
        self.abs.quantile(0.95).unwrap_or(0.0)
    }

    /// The underlying error sketch, for export.
    pub fn sketch(&self) -> &LogHistogram {
        &self.abs
    }
}

/// One row of the calibration table in the run report.
#[derive(Clone, Debug)]
pub struct CalibrationRow {
    /// Model key, e.g. `exec:montage_mProject`, `exec@theta`, or
    /// `xfer:0->2`.
    pub model: String,
    /// Observations folded in.
    pub count: u64,
    /// Mean absolute percentage error, as a fraction.
    pub mape: f64,
    /// Mean signed relative error (positive = over-prediction).
    pub bias: f64,
    /// 95th-percentile absolute relative error.
    pub p95_abs_err: f64,
}

/// Live predicted-vs-actual accuracy tracking across a run.
///
/// Keys are kept in `BTreeMap`s so the calibration table and metric
/// export order are deterministic.
#[derive(Clone, Debug)]
pub struct AccuracyMonitor {
    threshold: f64,
    exec_by_fn: BTreeMap<String, ErrorStats>,
    exec_by_ep: BTreeMap<String, ErrorStats>,
    xfer_by_pair: BTreeMap<(u16, u16), ErrorStats>,
    drift_events: u64,
}

impl Default for AccuracyMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl AccuracyMonitor {
    /// Creates a monitor with [`DEFAULT_DRIFT_THRESHOLD`].
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_DRIFT_THRESHOLD)
    }

    /// Creates a monitor flagging observations whose absolute relative
    /// error exceeds `threshold`.
    pub fn with_threshold(threshold: f64) -> Self {
        AccuracyMonitor {
            threshold,
            exec_by_fn: BTreeMap::new(),
            exec_by_ep: BTreeMap::new(),
            xfer_by_pair: BTreeMap::new(),
            drift_events: 0,
        }
    }

    /// The configured drift threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Observations flagged as drift so far.
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Records an execution-time observation for `function` on endpoint
    /// `ep_label`. Returns `true` when the error exceeds the drift
    /// threshold (the caller emits a trace instant).
    pub fn record_exec(
        &mut self,
        function: &str,
        ep_label: &str,
        predicted: f64,
        actual: f64,
    ) -> bool {
        let err = self
            .exec_by_fn
            .entry(function.to_string())
            .or_default()
            .record(predicted, actual);
        self.exec_by_ep
            .entry(ep_label.to_string())
            .or_default()
            .record(predicted, actual);
        let drifted = err > self.threshold;
        if drifted {
            self.drift_events += 1;
        }
        drifted
    }

    /// Records a transfer-time observation for the `src -> dst` pair.
    /// Returns `true` when the error exceeds the drift threshold.
    pub fn record_transfer(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        predicted: f64,
        actual: f64,
    ) -> bool {
        let err = self
            .xfer_by_pair
            .entry((src.0, dst.0))
            .or_default()
            .record(predicted, actual);
        let drifted = err > self.threshold;
        if drifted {
            self.drift_events += 1;
        }
        drifted
    }

    /// Per-function execution error stats.
    pub fn exec_stats(&self, function: &str) -> Option<&ErrorStats> {
        self.exec_by_fn.get(function)
    }

    /// Total observations recorded (exec by function + transfers).
    pub fn observations(&self) -> u64 {
        self.exec_by_fn.values().map(ErrorStats::count).sum::<u64>()
            + self
                .xfer_by_pair
                .values()
                .map(ErrorStats::count)
                .sum::<u64>()
    }

    /// Builds the per-model calibration table: one row per function
    /// (`exec:<fn>`), per endpoint (`exec@<ep>`), and per endpoint pair
    /// (`xfer:<src>-><dst>`), in deterministic key order.
    pub fn calibration_table(&self) -> Vec<CalibrationRow> {
        let row = |model: String, s: &ErrorStats| CalibrationRow {
            model,
            count: s.count(),
            mape: s.mape(),
            bias: s.bias(),
            p95_abs_err: s.p95_abs_err(),
        };
        let mut out = Vec::new();
        for (f, s) in &self.exec_by_fn {
            out.push(row(format!("exec:{f}"), s));
        }
        for (ep, s) in &self.exec_by_ep {
            out.push(row(format!("exec@{ep}"), s));
        }
        for (&(src, dst), s) in &self.xfer_by_pair {
            out.push(row(format!("xfer:{src}->{dst}"), s));
        }
        out
    }

    /// Exports the error sketches into a metrics registry:
    /// `unifaas_predictor_abs_rel_error{model=...}` histograms plus a
    /// `unifaas_predictor_drift_total` counter.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        const HELP: &str = "Absolute relative error of predicted vs actual duration.";
        for (f, s) in &self.exec_by_fn {
            let id = reg.histogram(
                "unifaas_predictor_abs_rel_error",
                HELP,
                &[("model", &format!("exec:{f}"))],
            );
            if let Some(sketch) = reg.histogram_sketch(id) {
                let mut merged = sketch.clone();
                merged.merge(s.sketch());
                // Re-seat the merged sketch: observe() one-by-one would
                // lose nothing but is O(n); direct replacement is exact.
                reg.replace_histogram(id, merged);
            }
        }
        for (&(src, dst), s) in &self.xfer_by_pair {
            let id = reg.histogram(
                "unifaas_predictor_abs_rel_error",
                HELP,
                &[("model", &format!("xfer:{src}->{dst}"))],
            );
            if let Some(sketch) = reg.histogram_sketch(id) {
                let mut merged = sketch.clone();
                merged.merge(s.sketch());
                reg.replace_histogram(id, merged);
            }
        }
        let drift = reg.counter(
            "unifaas_predictor_drift_total",
            "Observations whose prediction error exceeded the drift threshold.",
            &[],
        );
        reg.inc(drift, self.drift_events as f64);
    }
}

/// A [`Predictor`] wrapper that scales the inner predictor's answers —
/// the injection point for calibration tests (a known-biased predictor)
/// and what-if experiments.
pub struct ScaledPredictor<P> {
    inner: P,
    exec_scale: f64,
    transfer_scale: f64,
}

impl<P: Predictor> ScaledPredictor<P> {
    /// Wraps `inner`, multiplying execution predictions by `exec_scale`
    /// and transfer predictions by `transfer_scale`.
    pub fn new(inner: P, exec_scale: f64, transfer_scale: f64) -> Self {
        ScaledPredictor {
            inner,
            exec_scale,
            transfer_scale,
        }
    }
}

impl<P: Predictor> Predictor for ScaledPredictor<P> {
    fn exec_seconds(&self, dag: &Dag, task: TaskId, ep: &EndpointFeatures) -> f64 {
        self.inner.exec_seconds(dag, task, ep) * self.exec_scale
    }

    fn transfer_seconds(&self, bytes: u64, src: EndpointId, dst: EndpointId) -> f64 {
        self.inner.transfer_seconds(bytes, src, dst) * self.transfer_scale
    }

    fn output_bytes(&self, dag: &Dag, task: TaskId) -> u64 {
        self.inner.output_bytes(dag, task)
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bias_shows_in_mape_and_sign() {
        let mut m = AccuracyMonitor::new();
        // Predictor consistently 2x the actual: MAPE 100%, bias +1.
        for i in 1..=50 {
            let actual = i as f64;
            m.record_exec("map", "ep0", 2.0 * actual, actual);
        }
        let s = m.exec_stats("map").unwrap();
        assert_eq!(s.count(), 50);
        assert!((s.mape() - 1.0).abs() < 0.03, "mape={}", s.mape());
        assert!((s.bias() - 1.0).abs() < 1e-9, "bias={}", s.bias());
        assert!((s.p95_abs_err() - 1.0).abs() < 0.03);
        // Every observation is 100% off — each drifts exactly once at the
        // 25% threshold (per observation, not per index it lands in).
        assert_eq!(m.drift_events(), 50);
    }

    #[test]
    fn drift_counts_once_per_observation() {
        let mut m = AccuracyMonitor::with_threshold(0.5);
        assert!(!m.record_exec("f", "ep", 1.1, 1.0));
        assert!(m.record_exec("f", "ep", 3.0, 1.0));
        assert!(m.record_transfer(EndpointId(0), EndpointId(1), 10.0, 1.0));
        assert_eq!(m.drift_events(), 2);
    }

    #[test]
    fn unbiased_predictor_has_near_zero_bias() {
        let mut m = AccuracyMonitor::new();
        for i in 1..=100 {
            let actual = i as f64;
            let noise = if i % 2 == 0 { 1.1 } else { 0.9 };
            m.record_exec("f", "ep", actual * noise, actual);
        }
        let s = m.exec_stats("f").unwrap();
        assert!(s.bias().abs() < 0.01, "bias={}", s.bias());
        assert!((s.mape() - 0.1).abs() < 0.01, "mape={}", s.mape());
    }

    #[test]
    fn calibration_table_is_deterministic_and_complete() {
        let mut m = AccuracyMonitor::new();
        m.record_exec("b_fn", "ep1", 1.0, 1.0);
        m.record_exec("a_fn", "ep0", 1.0, 1.0);
        m.record_transfer(EndpointId(1), EndpointId(0), 2.0, 2.0);
        let table = m.calibration_table();
        let models: Vec<&str> = table.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(
            models,
            vec![
                "exec:a_fn",
                "exec:b_fn",
                "exec@ep0",
                "exec@ep1",
                "xfer:1->0"
            ]
        );
    }

    #[test]
    fn zero_actual_does_not_poison() {
        let mut m = AccuracyMonitor::new();
        m.record_exec("f", "ep", 0.0, 0.0);
        let s = m.exec_stats("f").unwrap();
        assert_eq!(s.count(), 1);
        assert!(!s.mape().is_nan());
        assert!(!s.bias().is_nan());
    }
}
