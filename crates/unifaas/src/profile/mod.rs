//! The *predict* stage: execution and transfer profilers (§IV-C).
//!
//! Both profilers implement the [`Predictor`] trait so the DHA scheduler is
//! agnostic to where its knowledge comes from:
//!
//! * [`OracleProfiler`] — ground truth from the simulation substrate, used
//!   when the paper "assume[s] full knowledge can be retrieved from the
//!   profilers" (§VI-A);
//! * [`LearnedProfiler`] — the real observe–predict–decide loop: a random
//!   forest per function for execution time (features: input size, cores,
//!   CPU frequency, RAM) and per-endpoint-pair linear models for transfer
//!   time, trained online from monitor records.

pub mod accuracy;
pub mod execution;
pub mod transfer;

pub use accuracy::{AccuracyMonitor, CalibrationRow, ErrorStats, ScaledPredictor};
pub use execution::{ExecutionProfiler, ModelFamily};
pub use transfer::TransferProfiler;

use crate::monitor::TaskMonitor;
use fedci::endpoint::EndpointId;
use fedci::network::NetworkTopology;
use fedci::transfer::TransferParams;
use taskgraph::{Dag, TaskId};

/// Hardware features of an endpoint, as the profilers see them.
#[derive(Clone, Copy, Debug)]
pub struct EndpointFeatures {
    /// Endpoint id.
    pub id: EndpointId,
    /// Cores per node.
    pub cores: u32,
    /// CPU frequency in GHz.
    pub cpu_ghz: f64,
    /// RAM in GB.
    pub ram_gb: u32,
    /// True relative speed (only the oracle may use this).
    pub speed_factor: f64,
}

/// Prediction interface consumed by the schedulers.
pub trait Predictor {
    /// Predicted execution time of `task` on endpoint `ep`, seconds.
    fn exec_seconds(&self, dag: &Dag, task: TaskId, ep: &EndpointFeatures) -> f64;

    /// Predicted time to move `bytes` from `src` to `dst`, seconds.
    /// Zero when `src == dst`.
    fn transfer_seconds(&self, bytes: u64, src: EndpointId, dst: EndpointId) -> f64;

    /// Predicted output size of `task`, bytes.
    fn output_bytes(&self, dag: &Dag, task: TaskId) -> u64;

    /// Monotone counter bumped whenever the predictor's answers may have
    /// changed (a retrain). Consumers caching predictions invalidate when
    /// the epoch moves; a constant-knowledge predictor never needs to.
    fn epoch(&self) -> u64 {
        0
    }
}

/// Ground-truth predictor backed by the simulator's own parameters.
pub struct OracleProfiler {
    net: NetworkTopology,
    params: TransferParams,
}

impl OracleProfiler {
    /// Creates an oracle for the given substrate.
    pub fn new(net: NetworkTopology, params: TransferParams) -> Self {
        OracleProfiler { net, params }
    }
}

impl Predictor for OracleProfiler {
    fn exec_seconds(&self, dag: &Dag, task: TaskId, ep: &EndpointFeatures) -> f64 {
        dag.spec(task).compute_seconds / ep.speed_factor
    }

    fn transfer_seconds(&self, bytes: u64, src: EndpointId, dst: EndpointId) -> f64 {
        if src == dst || bytes == 0 {
            return 0.0;
        }
        let link = self.net.link(src, dst);
        let dur = self.params.duration(bytes, link.bandwidth_bps);
        link.latency.as_secs_f64() + dur.as_secs_f64()
    }

    fn output_bytes(&self, dag: &Dag, task: TaskId) -> u64 {
        dag.spec(task).output_bytes
    }
}

/// The learned predictor: combines the execution and transfer profilers.
pub struct LearnedProfiler {
    /// Per-function execution models.
    pub execution: ExecutionProfiler,
    /// Per-pair transfer models.
    pub transfer: TransferProfiler,
    /// Retrain counter (see [`Predictor::epoch`]).
    epoch: u64,
}

impl LearnedProfiler {
    /// Creates an untrained profiler (optionally trained later from a
    /// monitor's history).
    pub fn new() -> Self {
        Self::with_family(ModelFamily::default())
    }

    /// Creates an untrained profiler using the given execution model
    /// family.
    pub fn with_family(family: ModelFamily) -> Self {
        LearnedProfiler {
            execution: ExecutionProfiler::with_family(family),
            transfer: TransferProfiler::new(),
            epoch: 0,
        }
    }

    /// Retrains both profilers from the monitor's accumulated records.
    pub fn retrain(&mut self, monitor: &TaskMonitor) {
        self.execution.retrain(monitor.history());
        self.transfer.retrain(monitor.history());
        self.epoch += 1;
    }
}

impl Default for LearnedProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for LearnedProfiler {
    fn exec_seconds(&self, dag: &Dag, task: TaskId, ep: &EndpointFeatures) -> f64 {
        let spec = dag.spec(task);
        let input_bytes: u64 = dag
            .preds(task)
            .iter()
            .map(|p| dag.spec(*p).output_bytes)
            .sum::<u64>()
            + spec.external_input_bytes;
        self.execution.predict(
            dag.function_name(spec.function),
            input_bytes,
            ep,
            spec.compute_seconds,
        )
    }

    fn transfer_seconds(&self, bytes: u64, src: EndpointId, dst: EndpointId) -> f64 {
        if src == dst || bytes == 0 {
            return 0.0;
        }
        self.transfer.predict(bytes, src, dst)
    }

    fn output_bytes(&self, dag: &Dag, task: TaskId) -> u64 {
        let spec = dag.spec(task);
        self.execution
            .predict_output_bytes(dag.function_name(spec.function))
            .unwrap_or(spec.output_bytes)
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedci::network::Link;
    use fedci::transfer::TransferMechanism;
    use taskgraph::TaskSpec;

    fn features(id: u16, speed: f64) -> EndpointFeatures {
        EndpointFeatures {
            id: EndpointId(id),
            cores: 16,
            cpu_ghz: 2.6,
            ram_gb: 64,
            speed_factor: speed,
        }
    }

    #[test]
    fn oracle_exec_uses_speed_factor() {
        let net = NetworkTopology::uniform(2, Link::wan());
        let oracle = OracleProfiler::new(net, TransferMechanism::Globus.default_params());
        let mut dag = Dag::new();
        let f = dag.register_function("f");
        let t = dag.add_task(TaskSpec::compute(f, 100.0), &[]);
        assert_eq!(oracle.exec_seconds(&dag, t, &features(0, 1.0)), 100.0);
        assert_eq!(oracle.exec_seconds(&dag, t, &features(1, 2.0)), 50.0);
    }

    #[test]
    fn oracle_transfer_zero_for_local() {
        let net = NetworkTopology::uniform(2, Link::wan());
        let oracle = OracleProfiler::new(net, TransferMechanism::Globus.default_params());
        assert_eq!(
            oracle.transfer_seconds(1 << 30, EndpointId(0), EndpointId(0)),
            0.0
        );
        assert!(oracle.transfer_seconds(1 << 30, EndpointId(0), EndpointId(1)) > 0.0);
        assert_eq!(
            oracle.transfer_seconds(0, EndpointId(0), EndpointId(1)),
            0.0
        );
    }

    #[test]
    fn oracle_output_bytes_is_exact() {
        let net = NetworkTopology::uniform(1, Link::wan());
        let oracle = OracleProfiler::new(net, TransferMechanism::Globus.default_params());
        let mut dag = Dag::new();
        let f = dag.register_function("f");
        let t = dag.add_task(TaskSpec::compute(f, 1.0).with_output_bytes(777), &[]);
        assert_eq!(oracle.output_bytes(&dag, t), 777);
    }
}
