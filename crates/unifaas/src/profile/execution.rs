//! The execution profiler: one random-forest model per function (§IV-C).
//!
//! "The model takes the input size, number of cores, CPU frequency, and RAM
//! size of the endpoint to run on as inputs, and estimates the execution
//! time and output data size."
//!
//! Until a function has enough observations to train a model, predictions
//! fall back in stages: per-function mean duration → the task's nominal
//! duration supplied by the caller. Retraining is incremental: only
//! functions with new records since the last training pass are refit.

use crate::monitor::HistoryDb;
use crate::profile::EndpointFeatures;
use perfmodel::{
    BayesianLinearRegression, Dataset, LinearRegression, RandomForest, RandomForestParams,
    Regressor, Trainer,
};
use simkit::OnlineStats;
use std::collections::HashMap;

/// Which model family the execution profiler trains per function. Random
/// forest is the paper's default; the others are the named alternatives
/// ("users can easily extend it to other appropriate performance models
/// such as XGBoost and Bayesian linear regression").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModelFamily {
    /// Bagged CART forest (the paper's default).
    #[default]
    RandomForest,
    /// Ordinary least squares.
    Linear,
    /// Bayesian linear regression (ridge with predictive uncertainty).
    BayesianLinear,
}

/// Minimum observations before a forest is trained for a function.
const MIN_TRAIN_ROWS: usize = 8;
/// Sliding window of most recent observations kept per function, so models
/// track drifting endpoint performance.
const MAX_ROWS_PER_FUNCTION: usize = 2_000;

enum FittedModel {
    Forest(RandomForest),
    Linear(perfmodel::linreg::LinearModel),
    Bayesian(perfmodel::BayesianLinearModel),
}

impl FittedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            FittedModel::Forest(m) => m.predict(x),
            FittedModel::Linear(m) => m.predict(x),
            FittedModel::Bayesian(m) => m.predict(x),
        }
    }
}

struct FunctionModel {
    data: Dataset,
    fitted: Option<FittedModel>,
    rows_at_last_fit: usize,
    duration_stats: OnlineStats,
    output_stats: OnlineStats,
}

impl FunctionModel {
    fn new() -> Self {
        FunctionModel {
            data: Dataset::new(4),
            fitted: None,
            rows_at_last_fit: 0,
            duration_stats: OnlineStats::new(),
            output_stats: OnlineStats::new(),
        }
    }
}

/// Per-function execution-time and output-size models.
pub struct ExecutionProfiler {
    models: HashMap<std::sync::Arc<str>, FunctionModel>,
    family: ModelFamily,
    forest_params: RandomForestParams,
    history_rows_seen: usize,
}

impl ExecutionProfiler {
    /// Creates an empty profiler with the paper's default model family.
    pub fn new() -> Self {
        Self::with_family(ModelFamily::RandomForest)
    }

    /// Creates an empty profiler using the given model family.
    pub fn with_family(family: ModelFamily) -> Self {
        ExecutionProfiler {
            models: HashMap::new(),
            family,
            forest_params: RandomForestParams {
                n_trees: 15,
                ..Default::default()
            },
            history_rows_seen: 0,
        }
    }

    fn fit(&self, data: &Dataset) -> Option<FittedModel> {
        match self.family {
            ModelFamily::RandomForest => {
                RandomForest::fit(data, &self.forest_params).map(FittedModel::Forest)
            }
            ModelFamily::Linear => LinearRegression::default()
                .fit(data)
                .map(FittedModel::Linear),
            ModelFamily::BayesianLinear => BayesianLinearRegression::default()
                .fit(data)
                .map(FittedModel::Bayesian),
        }
    }

    /// Ingests any new records from the history database and refits models
    /// for functions that gained data.
    pub fn retrain(&mut self, history: &HistoryDb) {
        let records = history.records();
        let mut touched: Vec<std::sync::Arc<str>> = Vec::new();
        for rec in &records[self.history_rows_seen.min(records.len())..] {
            if !rec.success {
                continue;
            }
            let model = self
                .models
                .entry(rec.function.clone())
                .or_insert_with(FunctionModel::new);
            model.data.push(
                &[
                    rec.input_bytes as f64,
                    rec.cores as f64,
                    rec.cpu_ghz,
                    rec.ram_gb as f64,
                ],
                rec.duration_seconds,
            );
            model.data.truncate_oldest(MAX_ROWS_PER_FUNCTION);
            model.duration_stats.push(rec.duration_seconds);
            model.output_stats.push(rec.output_bytes as f64);
            if !touched.contains(&rec.function) {
                touched.push(rec.function.clone());
            }
        }
        self.history_rows_seen = records.len();

        for name in touched {
            let model = self.models.get_mut(&name).expect("just inserted");
            if model.data.len() >= MIN_TRAIN_ROWS && model.data.len() > model.rows_at_last_fit {
                let rows = model.data.len();
                let fitted = {
                    let model = &self.models[&name];
                    self.fit(&model.data)
                };
                let model = self.models.get_mut(&name).expect("just inserted");
                model.fitted = fitted;
                model.rows_at_last_fit = rows;
            }
        }
    }

    /// Predicts the execution time of `function` with the given input size
    /// on an endpoint, in seconds. `nominal_seconds` is the task-spec
    /// duration used as the cold-start fallback.
    pub fn predict(
        &self,
        function: &str,
        input_bytes: u64,
        ep: &EndpointFeatures,
        nominal_seconds: f64,
    ) -> f64 {
        match self.models.get(function) {
            Some(m) => {
                if let Some(fitted) = &m.fitted {
                    fitted
                        .predict(&[
                            input_bytes as f64,
                            ep.cores as f64,
                            ep.cpu_ghz,
                            ep.ram_gb as f64,
                        ])
                        .max(0.0)
                } else if m.duration_stats.count() > 0 {
                    m.duration_stats.mean()
                } else {
                    nominal_seconds
                }
            }
            None => nominal_seconds,
        }
    }

    /// Predicted output size of `function`, if observed before.
    pub fn predict_output_bytes(&self, function: &str) -> Option<u64> {
        self.models
            .get(function)
            .filter(|m| m.output_stats.count() > 0)
            .map(|m| m.output_stats.mean().max(0.0) as u64)
    }

    /// Number of functions with a trained model.
    pub fn trained_functions(&self) -> usize {
        self.models.values().filter(|m| m.fitted.is_some()).count()
    }

    /// The model family in use.
    pub fn family(&self) -> ModelFamily {
        self.family
    }
}

impl Default for ExecutionProfiler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::TaskRecord;
    use fedci::endpoint::EndpointId;

    fn features(cores: u32, ghz: f64, ram: u32) -> EndpointFeatures {
        EndpointFeatures {
            id: EndpointId(0),
            cores,
            cpu_ghz: ghz,
            ram_gb: ram,
            speed_factor: 1.0,
        }
    }

    fn record(function: &str, cores: u32, dur: f64) -> TaskRecord {
        TaskRecord {
            function: function.into(),
            endpoint: EndpointId(0),
            input_bytes: 1_000_000,
            duration_seconds: dur,
            output_bytes: 500,
            cores,
            cpu_ghz: 2.5,
            ram_gb: 64,
            success: true,
        }
    }

    #[test]
    fn cold_start_uses_nominal() {
        let p = ExecutionProfiler::new();
        assert_eq!(p.predict("dock", 100, &features(16, 2.5, 64), 42.0), 42.0);
        assert_eq!(p.predict_output_bytes("dock"), None);
    }

    #[test]
    fn few_records_fall_back_to_mean() {
        let mut p = ExecutionProfiler::new();
        let mut db = HistoryDb::new();
        db.push(record("dock", 16, 10.0));
        db.push(record("dock", 16, 20.0));
        p.retrain(&db);
        assert_eq!(p.trained_functions(), 0);
        assert_eq!(p.predict("dock", 100, &features(16, 2.5, 64), 42.0), 15.0);
        assert_eq!(p.predict_output_bytes("dock"), Some(500));
    }

    #[test]
    fn forest_learns_endpoint_differences() {
        let mut p = ExecutionProfiler::new();
        let mut db = HistoryDb::new();
        // 16-core endpoint: 10 s; 40-core endpoint: 5 s.
        for _ in 0..20 {
            db.push(record("dock", 16, 10.0));
            db.push(record("dock", 40, 5.0));
        }
        p.retrain(&db);
        assert_eq!(p.trained_functions(), 1);
        let slow = p.predict("dock", 1_000_000, &features(16, 2.5, 64), 0.0);
        let fast = p.predict("dock", 1_000_000, &features(40, 2.5, 64), 0.0);
        assert!((slow - 10.0).abs() < 1.5, "slow={slow}");
        assert!((fast - 5.0).abs() < 1.5, "fast={fast}");
    }

    #[test]
    fn retrain_is_incremental() {
        let mut p = ExecutionProfiler::new();
        let mut db = HistoryDb::new();
        for _ in 0..10 {
            db.push(record("dock", 16, 10.0));
        }
        p.retrain(&db);
        let first = p.predict("dock", 1_000_000, &features(16, 2.5, 64), 0.0);
        // Re-ingesting the same db adds nothing new.
        p.retrain(&db);
        let second = p.predict("dock", 1_000_000, &features(16, 2.5, 64), 0.0);
        assert_eq!(first.to_bits(), second.to_bits());
        // New data changes the model.
        for _ in 0..30 {
            db.push(record("dock", 16, 30.0));
        }
        p.retrain(&db);
        let third = p.predict("dock", 1_000_000, &features(16, 2.5, 64), 0.0);
        assert!(third > first, "third={third} first={first}");
    }

    #[test]
    fn failed_records_ignored() {
        let mut p = ExecutionProfiler::new();
        let mut db = HistoryDb::new();
        let mut bad = record("dock", 16, 500.0);
        bad.success = false;
        db.push(bad);
        p.retrain(&db);
        assert_eq!(p.predict("dock", 100, &features(16, 2.5, 64), 7.0), 7.0);
    }
}
