//! The transfer profiler (§IV-C).
//!
//! "Data transfer time is primarily determined by the data size and the
//! network conditions between endpoints." The profiler keeps a per-pair
//! polynomial model `time = f(size)` fitted from observed transfers of that
//! pair (observed transfers are streamed into the history database as
//! pseudo-records by the runtime). Before any observation exists for a
//! pair, predictions use a probing estimate: a configurable default
//! bandwidth, standing in for the paper's "probing file transfers to
//! measure the network bandwidth between endpoints".

use crate::monitor::HistoryDb;
use fedci::endpoint::EndpointId;
use perfmodel::polyreg::{PolynomialModel, PolynomialRegression};
use perfmodel::{Dataset, Regressor, Trainer};
use std::collections::HashMap;

/// Prefix of pseudo-records carrying transfer observations in the history
/// database. Format: `__transfer__/<src>/<dst>`.
pub const TRANSFER_RECORD_PREFIX: &str = "__transfer__";

/// Builds the pseudo-function name for a transfer observation record.
pub fn transfer_record_name(src: EndpointId, dst: EndpointId) -> String {
    format!("{TRANSFER_RECORD_PREFIX}/{}/{}", src.0, dst.0)
}

/// Parses a pseudo-record name back into `(src, dst)`.
pub fn parse_transfer_record_name(name: &str) -> Option<(EndpointId, EndpointId)> {
    let mut parts = name.split('/');
    if parts.next()? != TRANSFER_RECORD_PREFIX {
        return None;
    }
    let src: u16 = parts.next()?.parse().ok()?;
    let dst: u16 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((EndpointId(src), EndpointId(dst)))
}

/// Minimum observations before a pair model is trained.
const MIN_TRAIN_ROWS: usize = 4;

struct PairModel {
    data: Dataset,
    model: Option<PolynomialModel>,
    rows_at_last_fit: usize,
}

/// Per-endpoint-pair transfer-time models.
pub struct TransferProfiler {
    pairs: HashMap<(EndpointId, EndpointId), PairModel>,
    trainer: PolynomialRegression,
    /// Probing estimate used for unseen pairs, bytes/second.
    pub probe_bandwidth_bps: f64,
    /// Fixed overhead assumed for unseen pairs, seconds.
    pub probe_startup_seconds: f64,
    history_rows_seen: usize,
}

impl TransferProfiler {
    /// Creates a profiler with WAN-class probing defaults (100 MiB/s).
    pub fn new() -> Self {
        TransferProfiler {
            pairs: HashMap::new(),
            trainer: PolynomialRegression {
                degree: 1,
                cross_terms: false,
                ridge: 1e-6,
            },
            probe_bandwidth_bps: 100.0 * 1024.0 * 1024.0,
            probe_startup_seconds: 2.0,
            history_rows_seen: 0,
        }
    }

    /// Ingests new transfer pseudo-records from the history database and
    /// refits the affected pair models.
    pub fn retrain(&mut self, history: &HistoryDb) {
        let records = history.records();
        let mut touched: Vec<(EndpointId, EndpointId)> = Vec::new();
        for rec in &records[self.history_rows_seen.min(records.len())..] {
            let Some(pair) = parse_transfer_record_name(&rec.function) else {
                continue;
            };
            if !rec.success {
                continue;
            }
            let entry = self.pairs.entry(pair).or_insert_with(|| PairModel {
                data: Dataset::new(1),
                model: None,
                rows_at_last_fit: 0,
            });
            entry
                .data
                .push(&[rec.input_bytes as f64], rec.duration_seconds);
            entry.data.truncate_oldest(1_000);
            if !touched.contains(&pair) {
                touched.push(pair);
            }
        }
        self.history_rows_seen = records.len();

        for pair in touched {
            let entry = self.pairs.get_mut(&pair).expect("just inserted");
            if entry.data.len() >= MIN_TRAIN_ROWS && entry.data.len() > entry.rows_at_last_fit {
                entry.model = self.trainer.fit(&entry.data);
                entry.rows_at_last_fit = entry.data.len();
            }
        }
    }

    /// Predicted transfer time for `bytes` on the `src → dst` pair, seconds.
    pub fn predict(&self, bytes: u64, src: EndpointId, dst: EndpointId) -> f64 {
        if src == dst || bytes == 0 {
            return 0.0;
        }
        if let Some(entry) = self.pairs.get(&(src, dst)) {
            if let Some(model) = &entry.model {
                return model.predict(&[bytes as f64]).max(0.0);
            }
        }
        self.probe_startup_seconds + bytes as f64 / self.probe_bandwidth_bps
    }

    /// Number of pairs with a trained model.
    pub fn trained_pairs(&self) -> usize {
        self.pairs.values().filter(|p| p.model.is_some()).count()
    }
}

impl Default for TransferProfiler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::TaskRecord;

    fn xfer_record(src: u16, dst: u16, bytes: u64, dur: f64) -> TaskRecord {
        TaskRecord {
            function: transfer_record_name(EndpointId(src), EndpointId(dst)).into(),
            endpoint: EndpointId(dst),
            input_bytes: bytes,
            duration_seconds: dur,
            output_bytes: 0,
            cores: 0,
            cpu_ghz: 0.0,
            ram_gb: 0,
            success: true,
        }
    }

    #[test]
    fn record_name_roundtrip() {
        let name = transfer_record_name(EndpointId(3), EndpointId(7));
        assert_eq!(
            parse_transfer_record_name(&name),
            Some((EndpointId(3), EndpointId(7)))
        );
        assert_eq!(parse_transfer_record_name("dock"), None);
        assert_eq!(parse_transfer_record_name("__transfer__/x/1"), None);
        assert_eq!(parse_transfer_record_name("__transfer__/1/2/3"), None);
    }

    #[test]
    fn unseen_pair_uses_probe_estimate() {
        let p = TransferProfiler::new();
        let t = p.predict(100 * 1024 * 1024, EndpointId(0), EndpointId(1));
        // 2 s startup + 100 MiB / 100 MiB/s = 3 s.
        assert!((t - 3.0).abs() < 0.01, "t={t}");
        assert_eq!(p.predict(123, EndpointId(1), EndpointId(1)), 0.0);
    }

    #[test]
    fn learns_linear_pair_model() {
        let mut p = TransferProfiler::new();
        let mut db = HistoryDb::new();
        // Ground truth: 1 s + bytes / 50 MiB/s on pair (0→1).
        let bw = 50.0 * 1024.0 * 1024.0;
        for mb in [1u64, 10, 50, 100, 200, 400] {
            let bytes = mb * 1024 * 1024;
            db.push(xfer_record(0, 1, bytes, 1.0 + bytes as f64 / bw));
        }
        p.retrain(&db);
        assert_eq!(p.trained_pairs(), 1);
        let pred = p.predict(150 * 1024 * 1024, EndpointId(0), EndpointId(1));
        let want = 1.0 + 3.0;
        assert!((pred - want).abs() / want < 0.05, "pred={pred} want={want}");
        // Other direction remains on the probe estimate.
        let rev = p.predict(150 * 1024 * 1024, EndpointId(1), EndpointId(0));
        assert!((rev - (2.0 + 1.5)).abs() < 0.05, "rev={rev}");
    }

    #[test]
    fn non_transfer_records_ignored() {
        let mut p = TransferProfiler::new();
        let mut db = HistoryDb::new();
        db.push(TaskRecord {
            function: "dock".into(),
            endpoint: EndpointId(0),
            input_bytes: 100,
            duration_seconds: 1.0,
            output_bytes: 0,
            cores: 1,
            cpu_ghz: 1.0,
            ram_gb: 1,
            success: true,
        });
        p.retrain(&db);
        assert_eq!(p.trained_pairs(), 0);
        assert!(p.pairs.is_empty());
    }

    #[test]
    fn prediction_never_negative() {
        let mut p = TransferProfiler::new();
        let mut db = HistoryDb::new();
        // Degenerate data that could fit a negative intercept.
        for _ in 0..5 {
            db.push(xfer_record(0, 1, 1_000_000, 0.001));
        }
        p.retrain(&db);
        assert!(p.predict(1, EndpointId(0), EndpointId(1)) >= 0.0);
    }
}
