//! Per-endpoint data stores.
//!
//! Each endpoint fronts a cluster with a shared filesystem: once a file has
//! been staged there (or produced by a task running there), every worker on
//! that endpoint can read it without further transfers. The data manager
//! consults these stores to compute how many bytes a candidate placement
//! would actually move — the quantity the Locality scheduler minimizes.

use crate::endpoint::EndpointId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Identifier of a data object (a task's output file or an external input).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataId(pub u64);

/// Location and size bookkeeping for every data object in a workflow run.
#[derive(Clone, Debug, Default)]
pub struct DataStore {
    /// For each object: its size and the endpoints holding a replica.
    objects: HashMap<DataId, ObjectInfo>,
    /// Bumped on every mutation; lets read-side caches (e.g. the DHA
    /// scheduler's best-replica cache) invalidate in O(1).
    version: u64,
}

#[derive(Clone, Debug)]
struct ObjectInfo {
    bytes: u64,
    replicas: Vec<EndpointId>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Registers a new object produced/pinned at `home`.
    ///
    /// # Panics
    ///
    /// Panics if the object was already registered (object ids are unique
    /// per run).
    pub fn register(&mut self, id: DataId, bytes: u64, home: EndpointId) {
        match self.objects.entry(id) {
            Entry::Occupied(_) => panic!("data object {id:?} registered twice"),
            Entry::Vacant(v) => {
                v.insert(ObjectInfo {
                    bytes,
                    replicas: vec![home],
                });
            }
        }
        self.version += 1;
    }

    /// Records that `id` now also exists at `ep` (a transfer completed).
    /// Idempotent.
    pub fn add_replica(&mut self, id: DataId, ep: EndpointId) {
        let info = self.objects.get_mut(&id).expect("unknown data object");
        if !info.replicas.contains(&ep) {
            info.replicas.push(ep);
            self.version += 1;
        }
    }

    /// Monotone counter bumped by every replica-set mutation. Two equal
    /// versions guarantee identical replica placement, so cached placement
    /// decisions keyed by the version stay valid exactly as long as it is
    /// unchanged.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Size of an object in bytes.
    pub fn bytes(&self, id: DataId) -> u64 {
        self.objects.get(&id).expect("unknown data object").bytes
    }

    /// True if `ep` holds a replica of `id`.
    pub fn present_at(&self, id: DataId, ep: EndpointId) -> bool {
        self.objects
            .get(&id)
            .map(|o| o.replicas.contains(&ep))
            .unwrap_or(false)
    }

    /// All endpoints holding `id` (in arrival order; index 0 is the home).
    pub fn replicas(&self, id: DataId) -> &[EndpointId] {
        &self.objects.get(&id).expect("unknown data object").replicas
    }

    /// Whether the object exists at all.
    pub fn contains(&self, id: DataId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Bytes that would need to move if a task consuming `inputs` ran at
    /// `ep` — the Locality scheduler's objective ("computes the amount of
    /// data transferred if placed on a specific endpoint").
    pub fn missing_bytes(&self, inputs: &[DataId], ep: EndpointId) -> u64 {
        inputs
            .iter()
            .filter(|id| !self.present_at(**id, ep))
            .map(|id| self.bytes(*id))
            .sum()
    }

    /// Drops all replicas of an object except its home (e.g. scratch
    /// clean-up between experiments). No-op for unknown objects.
    pub fn evict_non_home(&mut self, id: DataId) {
        if let Some(info) = self.objects.get_mut(&id) {
            if info.replicas.len() > 1 {
                info.replicas.truncate(1);
                self.version += 1;
            }
        }
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u16) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn register_and_replicate() {
        let mut ds = DataStore::new();
        ds.register(DataId(1), 100, ep(0));
        assert!(ds.present_at(DataId(1), ep(0)));
        assert!(!ds.present_at(DataId(1), ep(1)));
        ds.add_replica(DataId(1), ep(1));
        assert!(ds.present_at(DataId(1), ep(1)));
        assert_eq!(ds.replicas(DataId(1)), &[ep(0), ep(1)]);
        assert_eq!(ds.bytes(DataId(1)), 100);
    }

    #[test]
    fn add_replica_idempotent() {
        let mut ds = DataStore::new();
        ds.register(DataId(1), 10, ep(0));
        ds.add_replica(DataId(1), ep(1));
        ds.add_replica(DataId(1), ep(1));
        assert_eq!(ds.replicas(DataId(1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let mut ds = DataStore::new();
        ds.register(DataId(1), 10, ep(0));
        ds.register(DataId(1), 20, ep(1));
    }

    #[test]
    fn missing_bytes_counts_only_absent_inputs() {
        let mut ds = DataStore::new();
        ds.register(DataId(1), 100, ep(0));
        ds.register(DataId(2), 50, ep(1));
        ds.register(DataId(3), 7, ep(0));
        ds.add_replica(DataId(3), ep(1));
        let inputs = [DataId(1), DataId(2), DataId(3)];
        assert_eq!(ds.missing_bytes(&inputs, ep(0)), 50); // only id 2 absent
        assert_eq!(ds.missing_bytes(&inputs, ep(1)), 100); // only id 1 absent
        assert_eq!(ds.missing_bytes(&inputs, ep(2)), 157); // everything
        assert_eq!(ds.missing_bytes(&[], ep(2)), 0);
    }

    #[test]
    fn evict_non_home_keeps_origin() {
        let mut ds = DataStore::new();
        ds.register(DataId(9), 5, ep(2));
        ds.add_replica(DataId(9), ep(0));
        ds.evict_non_home(DataId(9));
        assert_eq!(ds.replicas(DataId(9)), &[ep(2)]);
        ds.evict_non_home(DataId(404)); // unknown: no-op
    }

    #[test]
    fn version_tracks_replica_mutations_only() {
        let mut ds = DataStore::new();
        let v0 = ds.version();
        ds.register(DataId(1), 100, ep(0));
        let v1 = ds.version();
        assert!(v1 > v0);
        ds.add_replica(DataId(1), ep(1));
        let v2 = ds.version();
        assert!(v2 > v1);
        // Idempotent add and reads leave the version alone.
        ds.add_replica(DataId(1), ep(1));
        let _ = ds.bytes(DataId(1));
        let _ = ds.missing_bytes(&[DataId(1)], ep(2));
        assert_eq!(ds.version(), v2);
        ds.evict_non_home(DataId(1));
        assert!(ds.version() > v2);
        let v3 = ds.version();
        ds.evict_non_home(DataId(1)); // single replica left: no change
        ds.evict_non_home(DataId(404)); // unknown: no change
        assert_eq!(ds.version(), v3);
    }

    #[test]
    fn presence_of_unknown_object_is_false() {
        let ds = DataStore::new();
        assert!(!ds.present_at(DataId(1), ep(0)));
        assert!(!ds.contains(DataId(1)));
        assert!(ds.is_empty());
    }
}
