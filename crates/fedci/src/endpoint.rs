//! A funcX-style endpoint: an elastic pool of single-task workers on one
//! cluster.
//!
//! `EndpointSim` is a passive state machine — the runtime (in the `unifaas`
//! crate) owns the event loop and calls into it. It models:
//!
//! * **workers**: each worker executes one task at a time (the paper's
//!   "each function is mapped to a worker");
//! * **elastic scaling**: scale-out requests pass through the cluster's
//!   batch scheduler and arrive after `provision_delay`; scale-in (killing
//!   idle workers) is immediate. This asymmetry is why UniFaaS "scales out
//!   aggressively but scales in conservatively" (§IV-H);
//! * **heterogeneity**: execution time scales with the cluster's speed
//!   factor;
//! * **capacity dynamics**: Table V's experiments add/remove workers at
//!   fixed times; [`EndpointSim::force_capacity_delta`] implements that.

use crate::hardware::ClusterSpec;
use simkit::{SimDuration, SimTime};
use std::fmt;

/// Index of an endpoint within the federation (dense, small).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u16);

impl EndpointId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Simulated endpoint state.
#[derive(Clone, Debug)]
pub struct EndpointSim {
    /// This endpoint's id.
    pub id: EndpointId,
    /// The cluster it runs on.
    pub cluster: ClusterSpec,
    /// Upper bound on workers (the experiment's allocation limit).
    pub max_workers: usize,
    active_workers: usize,
    busy_workers: usize,
    /// Workers requested from the batch scheduler but not yet arrived.
    pending_workers: usize,
    /// When the endpoint last became completely idle (no busy workers);
    /// `None` while any worker is busy. Drives idle-timeout scale-in.
    idle_since: Option<SimTime>,
    /// Cumulative worker-seconds of execution (for utilization accounting).
    busy_worker_seconds: f64,
    last_busy_update: SimTime,
}

impl EndpointSim {
    /// Creates an endpoint with `initial_workers` already provisioned.
    pub fn new(
        id: EndpointId,
        cluster: ClusterSpec,
        initial_workers: usize,
        max_workers: usize,
    ) -> Self {
        assert!(initial_workers <= max_workers);
        EndpointSim {
            id,
            cluster,
            max_workers,
            active_workers: initial_workers,
            busy_workers: 0,
            pending_workers: 0,
            idle_since: Some(SimTime::ZERO),
            busy_worker_seconds: 0.0,
            last_busy_update: SimTime::ZERO,
        }
    }

    /// Provisioned workers currently able to run tasks.
    pub fn active_workers(&self) -> usize {
        self.active_workers
    }

    /// Workers currently executing a task.
    pub fn busy_workers(&self) -> usize {
        self.busy_workers
    }

    /// Workers provisioned but idle.
    pub fn idle_workers(&self) -> usize {
        self.active_workers - self.busy_workers
    }

    /// Workers requested but still in the batch queue.
    pub fn pending_workers(&self) -> usize {
        self.pending_workers
    }

    /// Capacity as the paper defines it: the number of workers.
    pub fn capacity(&self) -> usize {
        self.active_workers
    }

    /// Time this endpoint needs to execute `compute_seconds` of reference
    /// work.
    pub fn exec_duration(&self, compute_seconds: f64) -> SimDuration {
        SimDuration::from_secs_f64(compute_seconds / self.cluster.speed_factor)
    }

    /// Batch-queue delay for newly requested workers.
    pub fn provision_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cluster.provision_delay_s)
    }

    /// Requests `count` more workers, clamped so
    /// `active + pending <= max_workers`. Returns the number actually
    /// requested; the caller should schedule a commission event after
    /// [`EndpointSim::provision_delay`].
    pub fn request_workers(&mut self, count: usize) -> usize {
        let room = self
            .max_workers
            .saturating_sub(self.active_workers + self.pending_workers);
        let granted = count.min(room);
        self.pending_workers += granted;
        granted
    }

    /// Commissions `count` previously requested workers (the batch job
    /// started).
    pub fn commission_workers(&mut self, count: usize, now: SimTime) {
        assert!(
            count <= self.pending_workers,
            "commissioning unrequested workers"
        );
        self.accumulate_busy(now);
        self.pending_workers -= count;
        self.active_workers += count;
    }

    /// Kills up to `count` idle workers immediately. Returns how many died.
    pub fn release_idle_workers(&mut self, count: usize, now: SimTime) -> usize {
        self.accumulate_busy(now);
        let killable = self.idle_workers().min(count);
        self.active_workers -= killable;
        killable
    }

    /// Forcibly changes capacity by `delta` workers (positive or negative),
    /// used by the Table V dynamic-capacity experiments. A negative delta
    /// may preempt busy workers; preempted tasks must be re-dispatched by
    /// the caller. Returns the number of *busy* workers preempted.
    pub fn force_capacity_delta(&mut self, delta: i64, now: SimTime) -> usize {
        self.accumulate_busy(now);
        if delta >= 0 {
            let add = (delta as usize).min(self.max_workers * 100); // sanity clamp
            self.active_workers += add;
            self.max_workers = self.max_workers.max(self.active_workers);
            0
        } else {
            let remove = (-delta) as usize;
            let remove = remove.min(self.active_workers);
            self.active_workers -= remove;
            self.max_workers = self
                .max_workers
                .min(self.active_workers.max(1))
                .max(self.active_workers);
            if self.busy_workers > self.active_workers {
                let preempted = self.busy_workers - self.active_workers;
                self.busy_workers = self.active_workers;
                if self.busy_workers == 0 {
                    self.idle_since = Some(now);
                }
                preempted
            } else {
                0
            }
        }
    }

    /// Marks one worker busy (a task started). Returns false if no idle
    /// worker is available.
    pub fn occupy_worker(&mut self, now: SimTime) -> bool {
        if self.idle_workers() == 0 {
            return false;
        }
        self.accumulate_busy(now);
        self.busy_workers += 1;
        self.idle_since = None;
        true
    }

    /// Marks one worker idle again (a task finished).
    pub fn release_worker(&mut self, now: SimTime) {
        assert!(self.busy_workers > 0, "release without occupy");
        self.accumulate_busy(now);
        self.busy_workers -= 1;
        if self.busy_workers == 0 {
            self.idle_since = Some(now);
        }
    }

    /// How long the endpoint has been completely idle, if it is.
    pub fn idle_duration(&self, now: SimTime) -> Option<SimDuration> {
        self.idle_since.map(|t| now.saturating_since(t))
    }

    /// Fraction of provisioned worker-time spent busy since t=0.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.accumulate_busy(now);
        let wall = now.as_secs_f64();
        if wall == 0.0 || self.active_workers == 0 {
            return 0.0;
        }
        // Approximation: assumes active_workers was constant; good enough
        // for instantaneous monitoring (the metrics crate integrates the
        // exact series).
        self.busy_worker_seconds / (wall * self.active_workers as f64)
    }

    fn accumulate_busy(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_busy_update).as_secs_f64();
        self.busy_worker_seconds += dt * self.busy_workers as f64;
        self.last_busy_update = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(initial: usize, max: usize) -> EndpointSim {
        EndpointSim::new(EndpointId(0), ClusterSpec::qiming(), initial, max)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn worker_accounting() {
        let mut e = ep(4, 10);
        assert_eq!(e.active_workers(), 4);
        assert_eq!(e.idle_workers(), 4);
        assert!(e.occupy_worker(t(0)));
        assert!(e.occupy_worker(t(0)));
        assert_eq!(e.busy_workers(), 2);
        assert_eq!(e.idle_workers(), 2);
        e.release_worker(t(5));
        assert_eq!(e.busy_workers(), 1);
    }

    #[test]
    fn occupy_fails_when_saturated() {
        let mut e = ep(1, 1);
        assert!(e.occupy_worker(t(0)));
        assert!(!e.occupy_worker(t(0)));
    }

    #[test]
    #[should_panic(expected = "release without occupy")]
    fn release_without_occupy_panics() {
        ep(1, 1).release_worker(t(0));
    }

    #[test]
    fn scale_out_respects_max_and_pending() {
        let mut e = ep(4, 10);
        assert_eq!(e.request_workers(4), 4);
        assert_eq!(e.pending_workers(), 4);
        // Only 2 more fit under the cap.
        assert_eq!(e.request_workers(5), 2);
        assert_eq!(e.pending_workers(), 6);
        e.commission_workers(6, t(30));
        assert_eq!(e.active_workers(), 10);
        assert_eq!(e.pending_workers(), 0);
    }

    #[test]
    #[should_panic(expected = "unrequested")]
    fn commission_more_than_requested_panics() {
        let mut e = ep(1, 10);
        e.commission_workers(1, t(0));
    }

    #[test]
    fn scale_in_only_kills_idle() {
        let mut e = ep(5, 10);
        e.occupy_worker(t(0));
        e.occupy_worker(t(0));
        assert_eq!(e.release_idle_workers(100, t(1)), 3);
        assert_eq!(e.active_workers(), 2);
        assert_eq!(e.busy_workers(), 2);
    }

    #[test]
    fn idle_tracking() {
        let mut e = ep(2, 2);
        assert_eq!(e.idle_duration(t(30)), Some(SimDuration::from_secs(30)));
        e.occupy_worker(t(30));
        assert_eq!(e.idle_duration(t(40)), None);
        e.release_worker(t(50));
        assert_eq!(e.idle_duration(t(80)), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn exec_duration_scales_with_speed() {
        let q = EndpointSim::new(EndpointId(0), ClusterSpec::qiming(), 1, 1);
        let ty = EndpointSim::new(EndpointId(1), ClusterSpec::taiyi(), 1, 1);
        assert_eq!(q.exec_duration(140.0), SimDuration::from_secs(140));
        let taiyi_secs = ty.exec_duration(140.0).as_secs_f64();
        assert!(
            (taiyi_secs - 140.0 / ClusterSpec::taiyi().speed_factor).abs() < 1e-6,
            "taiyi_secs={taiyi_secs}"
        );
        assert!(taiyi_secs < 140.0, "faster cluster must finish sooner");
    }

    #[test]
    fn force_capacity_grows_and_shrinks() {
        let mut e = ep(4, 4);
        assert_eq!(e.force_capacity_delta(6, t(10)), 0);
        assert_eq!(e.active_workers(), 10);
        assert!(e.max_workers >= 10);
        // Shrink below busy count → preemption.
        for _ in 0..8 {
            assert!(e.occupy_worker(t(11)));
        }
        let preempted = e.force_capacity_delta(-7, t(20));
        assert_eq!(e.active_workers(), 3);
        assert_eq!(preempted, 5); // 8 busy, only 3 slots remain
        assert_eq!(e.busy_workers(), 3);
    }

    #[test]
    fn utilization_accumulates() {
        let mut e = ep(2, 2);
        e.occupy_worker(t(0));
        e.occupy_worker(t(0));
        e.release_worker(t(10));
        e.release_worker(t(10));
        // 20 busy worker-seconds over 2 workers * 20 s wall = 0.5.
        let u = e.utilization(t(20));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn utilization_zero_cases() {
        let mut e = ep(0, 5);
        assert_eq!(e.utilization(t(0)), 0.0);
        assert_eq!(e.utilization(t(10)), 0.0);
    }
}
