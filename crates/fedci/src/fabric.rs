//! The execution-fabric abstraction shared by the live backends.
//!
//! The simulated backend reproduces the paper's experiments over virtual
//! time; the *live* backends execute real work on real resources. Before
//! this module existed the only live backend was the in-process
//! [`threaded`](crate::threaded) worker pools, and the runtime above was
//! welded to them. [`Fabric`] extracts the contract that runtime actually
//! relies on, so the same client path — placement, retry/health machinery,
//! straggler watchdog — drives both the threaded pools and the
//! process-isolated TCP backend ([`crate::process`]):
//!
//! * work is a *named function over bytes* ([`JobSpec`]): the only job
//!   shape that can cross a process boundary. Dependencies are staged as
//!   keyed blobs ([`Fabric::stage`]) so data gravity works over a wire;
//! * completion is asynchronous and **at-most-once per attempt**: the
//!   fabric calls the [`Completion`] exactly once per submitted attempt,
//!   with `Err` covering both application failures and fabric-level loss
//!   (connection cut, endpoint crash). Exactly-once *task* semantics are
//!   the client's job, via attempt generations;
//! * liveness is a cheap probe ([`Fabric::probe`]) distilled from whatever
//!   signal the backend has — pool fault flags in-process, heartbeat
//!   acknowledgements over TCP.
//!
//! [`FabricTiming`] centralizes the heartbeat/poll/backoff intervals that
//! used to be hardcoded per backend, with the ordering every liveness
//! pipeline needs validated in one place (heartbeat < suspect < down).

use crate::threaded::ThreadedEndpoint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of one job attempt: result bytes or an error message.
pub type FabricResult = Result<Vec<u8>, String>;

/// Completion callback for one submitted attempt. Called exactly once,
/// from a fabric-owned thread.
pub type Completion = Box<dyn FnOnce(FabricResult) + Send + 'static>;

/// A function call the fabric can ship across a process boundary.
///
/// The executed input is `concat(blob[d] for d in deps) ++ payload`; the
/// dep blobs must have been [`Fabric::stage`]d at the target endpoint
/// first (an in-order transport makes "stage then dispatch" race-free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Task id (stable across attempts).
    pub task: u64,
    /// Attempt number, 1-based. The generation guard: a RESULT carrying a
    /// stale attempt is not this dispatch's answer.
    pub attempt: u32,
    /// Registered function name.
    pub function: Arc<str>,
    /// Keys of staged input blobs, concatenated in this order.
    pub deps: Vec<u64>,
    /// Inline argument bytes, appended after the dep blobs.
    pub payload: Vec<u8>,
}

/// Coarse liveness as seen by the fabric's own signal (heartbeats, fault
/// flags). The client feeds this into its `HealthPolicy` state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeState {
    /// Endpoint answers its liveness signal.
    Alive,
    /// Liveness signal is late (missed heartbeats past the suspect
    /// threshold) but the endpoint is not yet declared gone.
    Suspect,
    /// Endpoint is disconnected / crashed / marked down.
    Dead,
}

/// A live execution fabric: endpoints that run named functions over bytes
/// and report back asynchronously.
///
/// Implementations: [`ThreadedFabric`] (in-process worker pools) and
/// [`ProcessFabric`](crate::process::ProcessFabric) (endpoint daemons over
/// TCP). The simulated backend keeps its own discrete-event path but
/// shares the health/retry machinery and metrics taxonomy above this
/// trait.
pub trait Fabric: Send + Sync {
    /// Endpoint display labels; `labels().len()` is the endpoint count.
    fn labels(&self) -> &[String];

    /// Number of endpoints.
    fn n_endpoints(&self) -> usize {
        self.labels().len()
    }

    /// Configured workers at endpoint `ep`.
    fn n_workers(&self, ep: usize) -> usize;

    /// Workers currently executing (racy snapshot; for placement).
    fn busy_workers(&self, ep: usize) -> usize;

    /// The backend's own liveness verdict for `ep`.
    fn probe(&self, ep: usize) -> ProbeState;

    /// Makes blob `key` available at `ep` for later [`JobSpec::deps`]
    /// references. Idempotent per connection epoch: the fabric tracks
    /// what `ep` already holds and re-ships after a reconnect/restart.
    /// Fire-and-forget; a lost blob surfaces as a failed dispatch.
    fn stage(&self, ep: usize, key: u64, bytes: &Arc<Vec<u8>>);

    /// Submits one attempt to `ep`. `done` fires exactly once — with the
    /// function's result, or `Err` if the attempt was lost (endpoint
    /// down, connection cut, unknown function, missing input blob).
    fn submit(&self, ep: usize, job: JobSpec, done: Completion);

    /// Gracefully stops the fabric (drains daemons/pools). Idempotent.
    fn shutdown(&self);

    /// The instant this fabric's client-side clock started — the epoch
    /// all observability timestamps (client trace events, heartbeat
    /// clock probes) are measured from, so traces recorded against the
    /// fabric and the runtime above it share one timeline. Backends that
    /// keep no clock return "now", which is only consistent within a
    /// single call.
    fn clock_epoch(&self) -> Instant {
        Instant::now()
    }
}

// ---------------------------------------------------------------------------
// FabricTiming
// ---------------------------------------------------------------------------

/// Heartbeat/poll/backoff intervals shared by the live backends.
///
/// These used to be scattered hardcodes (`threaded::DEFAULT_POLL_TIMEOUT`,
/// ad-hoc watchdog ticks). Centralizing them buys one validation point:
/// liveness only works if `heartbeat_interval < suspect_after <
/// down_after`, and backoff only terminates if `reconnect_base <=
/// reconnect_max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricTiming {
    /// How long an idle threaded worker blocks on its queue before
    /// re-checking pool state (fault flags, shutdown).
    pub poll_timeout: Duration,
    /// Interval between heartbeats on a process-fabric connection.
    pub heartbeat_interval: Duration,
    /// No heartbeat ack for this long ⇒ the endpoint is Suspect.
    pub suspect_after: Duration,
    /// No heartbeat ack for this long ⇒ the connection is declared dead:
    /// in-flight work fails over and the reconnect loop starts.
    pub down_after: Duration,
    /// First reconnect backoff delay (doubles per consecutive failure).
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_max: Duration,
    /// TCP connect attempt budget.
    pub connect_timeout: Duration,
}

impl Default for FabricTiming {
    fn default() -> Self {
        FabricTiming {
            poll_timeout: crate::threaded::DEFAULT_POLL_TIMEOUT,
            heartbeat_interval: Duration::from_millis(500),
            suspect_after: Duration::from_millis(1500),
            down_after: Duration::from_secs(5),
            reconnect_base: Duration::from_millis(100),
            reconnect_max: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
        }
    }
}

impl FabricTiming {
    /// A millisecond-scale preset for tests: fast heartbeats, fast
    /// suspicion, fast reconnect. Still satisfies [`FabricTiming::validate`].
    pub fn fast() -> Self {
        FabricTiming {
            poll_timeout: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(25),
            suspect_after: Duration::from_millis(80),
            down_after: Duration::from_millis(250),
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
        }
    }

    /// Checks the interval ordering the liveness pipeline depends on.
    pub fn validate(&self) -> Result<(), String> {
        if self.poll_timeout.is_zero() {
            return Err("poll_timeout must be non-zero".into());
        }
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat_interval must be non-zero".into());
        }
        if self.heartbeat_interval >= self.suspect_after {
            return Err(format!(
                "heartbeat_interval ({:?}) must be < suspect_after ({:?})",
                self.heartbeat_interval, self.suspect_after
            ));
        }
        if self.suspect_after >= self.down_after {
            return Err(format!(
                "suspect_after ({:?}) must be < down_after ({:?})",
                self.suspect_after, self.down_after
            ));
        }
        if self.reconnect_base.is_zero() || self.reconnect_base > self.reconnect_max {
            return Err(format!(
                "reconnect_base ({:?}) must be non-zero and <= reconnect_max ({:?})",
                self.reconnect_base, self.reconnect_max
            ));
        }
        if self.connect_timeout.is_zero() {
            return Err("connect_timeout must be non-zero".into());
        }
        Ok(())
    }

    /// Missed-beat count at which a connection turns Suspect.
    pub fn suspect_misses(&self) -> u64 {
        Self::misses(self.suspect_after, self.heartbeat_interval)
    }

    /// Missed-beat count at which a connection is declared dead.
    pub fn down_misses(&self) -> u64 {
        Self::misses(self.down_after, self.heartbeat_interval)
    }

    fn misses(threshold: Duration, interval: Duration) -> u64 {
        (threshold.as_micros().div_ceil(interval.as_micros().max(1))).max(1) as u64
    }
}

// ---------------------------------------------------------------------------
// Function registry + builtins
// ---------------------------------------------------------------------------

/// A function the fabric can execute: bytes in, bytes out.
pub type WireFn = Arc<dyn Fn(&[u8]) -> FabricResult + Send + Sync>;

/// A name → [`WireFn`] registry.
///
/// The threaded fabric executes registrations in-process; the endpoint
/// daemon ships with [`FnRegistry::builtins`] so the same function names
/// produce the same bytes on every backend — which is what lets chaos
/// tests compare a faulted run's result set against an unfaulted one.
#[derive(Clone, Default)]
pub struct FnRegistry {
    map: Arc<Mutex<HashMap<String, WireFn>>>,
}

impl std::fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> = self.map.lock().keys().cloned().collect();
        names.sort();
        f.debug_struct("FnRegistry").field("names", &names).finish()
    }
}

impl FnRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The deterministic builtin set every backend agrees on:
    ///
    /// * `echo` — identity;
    /// * `fnv` — 8-byte LE FNV-1a 64 of the input (the workhorse for
    ///   result-set digests: chaining it over deps makes every task's
    ///   output a checksum of its whole ancestry);
    /// * `sum64` — sums the input interpreted as LE u64s (errors unless
    ///   the length is a multiple of 8);
    /// * `sleep` — first 8 bytes are LE milliseconds to sleep; echoes the
    ///   rest (straggler material for watchdog tests);
    /// * `fail` — always errors with the payload as the message.
    pub fn builtins() -> Self {
        let reg = Self::new();
        reg.register("echo", |input| Ok(input.to_vec()));
        reg.register("fnv", |input| Ok(fnv1a64(input).to_le_bytes().to_vec()));
        reg.register("sum64", |input| {
            if !input.len().is_multiple_of(8) {
                return Err(format!("sum64: input length {} not /8", input.len()));
            }
            let mut sum = 0u64;
            for chunk in input.chunks_exact(8) {
                sum = sum.wrapping_add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
            Ok(sum.to_le_bytes().to_vec())
        });
        reg.register("sleep", |input| {
            if input.len() < 8 {
                return Err("sleep: need 8-byte millisecond prefix".into());
            }
            let ms = u64::from_le_bytes(input[..8].try_into().expect("8 bytes"));
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
            Ok(input[8..].to_vec())
        });
        reg.register("fail", |input| {
            Err(String::from_utf8_lossy(input).into_owned())
        });
        reg
    }

    /// Registers (or replaces) `name`.
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(&[u8]) -> FabricResult + Send + Sync + 'static,
    {
        self.map.lock().insert(name.to_string(), Arc::new(f));
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<WireFn> {
        self.map.lock().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// FNV-1a 64-bit over `bytes` — the workspace's standing checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assembles a job's input: staged dep blobs in `deps` order, then the
/// inline payload. Shared by the threaded fabric and the endpoint daemon
/// so both sides agree byte-for-byte.
pub fn assemble_input(
    blobs: &HashMap<u64, Arc<Vec<u8>>>,
    job: &JobSpec,
) -> Result<Vec<u8>, String> {
    let mut size = job.payload.len();
    for d in &job.deps {
        size += blobs
            .get(d)
            .ok_or_else(|| format!("missing input blob {d} for task {}", job.task))?
            .len();
    }
    let mut input = Vec::with_capacity(size);
    for d in &job.deps {
        input.extend_from_slice(blobs.get(d).expect("checked above"));
    }
    input.extend_from_slice(&job.payload);
    Ok(input)
}

// ---------------------------------------------------------------------------
// ThreadedFabric
// ---------------------------------------------------------------------------

/// The in-process fabric: [`ThreadedEndpoint`] worker pools behind the
/// [`Fabric`] trait.
///
/// Staged blobs live in a per-endpoint map (the analogue of an endpoint's
/// shared filesystem); jobs execute registry functions on the pool's
/// workers. Fault injection flows through the pool's [`PoolFaults`]
/// switches — a down pool fails its probe and swallows submissions, which
/// is exactly the loss mode the client's watchdog recovers.
///
/// [`PoolFaults`]: crate::threaded::PoolFaults
pub struct ThreadedFabric {
    pools: Vec<Arc<ThreadedEndpoint>>,
    labels: Vec<String>,
    registry: FnRegistry,
    blobs: Vec<BlobStore>,
    clock0: Instant,
}

/// One endpoint's staged-blob map (the in-process stand-in for a
/// cluster's shared filesystem).
type BlobStore = Arc<Mutex<HashMap<u64, Arc<Vec<u8>>>>>;

impl ThreadedFabric {
    /// One worker pool per `(label, workers)` pair, with the builtin
    /// function set plus anything later [`ThreadedFabric::registry`]
    /// registrations add.
    pub fn new(endpoints: &[(&str, usize)], timing: &FabricTiming) -> Self {
        timing.validate().expect("invalid fabric timing");
        assert!(!endpoints.is_empty(), "need at least one endpoint");
        ThreadedFabric {
            pools: endpoints
                .iter()
                .map(|(l, w)| {
                    Arc::new(ThreadedEndpoint::with_poll_timeout(
                        l,
                        *w,
                        timing.poll_timeout,
                    ))
                })
                .collect(),
            labels: endpoints.iter().map(|(l, _)| l.to_string()).collect(),
            registry: FnRegistry::builtins(),
            blobs: endpoints
                .iter()
                .map(|_| Arc::new(Mutex::new(HashMap::new())))
                .collect(),
            clock0: Instant::now(),
        }
    }

    /// The function registry (builtins pre-loaded; add more freely).
    pub fn registry(&self) -> &FnRegistry {
        &self.registry
    }

    /// The underlying pool for endpoint `ep` (fault-injection hooks).
    pub fn pool(&self, ep: usize) -> &ThreadedEndpoint {
        &self.pools[ep]
    }
}

impl Fabric for ThreadedFabric {
    fn labels(&self) -> &[String] {
        &self.labels
    }

    fn clock_epoch(&self) -> Instant {
        self.clock0
    }

    fn n_workers(&self, ep: usize) -> usize {
        self.pools[ep].n_workers()
    }

    fn busy_workers(&self, ep: usize) -> usize {
        self.pools[ep].busy_workers()
    }

    fn probe(&self, ep: usize) -> ProbeState {
        if self.pools[ep].responsive() {
            ProbeState::Alive
        } else {
            ProbeState::Dead
        }
    }

    fn stage(&self, ep: usize, key: u64, bytes: &Arc<Vec<u8>>) {
        self.blobs[ep].lock().insert(key, Arc::clone(bytes));
    }

    fn submit(&self, ep: usize, job: JobSpec, done: Completion) {
        let registry = self.registry.clone();
        let blobs = Arc::clone(&self.blobs[ep]);
        self.pools[ep].submit_then(move || {
            let result = match registry.get(&job.function) {
                None => Err(format!("unknown function `{}`", job.function)),
                Some(f) => assemble_input(&blobs.lock(), &job).and_then(|input| f(&input)),
            };
            // Report after the worker frees, so dependents see this
            // worker as placeable capacity (same as the live runtime).
            Some(Box::new(move || done(result)) as Box<dyn FnOnce() + Send>)
        });
    }

    fn shutdown(&self) {
        // Pools drain and join on drop; nothing to force here. Kept as a
        // trait hook because the process fabric needs a real drain.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn timing_default_and_fast_validate() {
        assert_eq!(FabricTiming::default().validate(), Ok(()));
        assert_eq!(FabricTiming::fast().validate(), Ok(()));
        assert_eq!(
            FabricTiming::default().poll_timeout,
            crate::threaded::DEFAULT_POLL_TIMEOUT,
            "the old hardcode and the shared config must agree"
        );
    }

    #[test]
    fn timing_rejects_bad_orderings() {
        let d = FabricTiming::default();
        let t = FabricTiming {
            heartbeat_interval: d.suspect_after,
            ..d
        };
        assert!(t.validate().unwrap_err().contains("suspect_after"));

        let t = FabricTiming {
            suspect_after: d.down_after,
            ..d
        };
        assert!(t.validate().unwrap_err().contains("down_after"));

        let t = FabricTiming {
            reconnect_base: d.reconnect_max + Duration::from_millis(1),
            ..d
        };
        assert!(t.validate().unwrap_err().contains("reconnect_base"));

        for t in [
            FabricTiming {
                heartbeat_interval: Duration::ZERO,
                ..d
            },
            FabricTiming {
                poll_timeout: Duration::ZERO,
                ..d
            },
            FabricTiming {
                connect_timeout: Duration::ZERO,
                ..d
            },
        ] {
            assert!(t.validate().is_err());
        }
    }

    #[test]
    fn timing_miss_thresholds() {
        let t = FabricTiming {
            heartbeat_interval: Duration::from_millis(100),
            suspect_after: Duration::from_millis(250),
            down_after: Duration::from_millis(1000),
            ..FabricTiming::default()
        };
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.suspect_misses(), 3);
        assert_eq!(t.down_misses(), 10);
        assert!(t.suspect_misses() < t.down_misses());
    }

    #[test]
    fn builtins_are_deterministic() {
        let reg = FnRegistry::builtins();
        let fnv = reg.get("fnv").unwrap();
        assert_eq!(fnv(b"abc").unwrap(), fnv(b"abc").unwrap());
        assert_ne!(fnv(b"abc").unwrap(), fnv(b"abd").unwrap());
        let sum = reg.get("sum64").unwrap();
        let mut input = Vec::new();
        input.extend_from_slice(&3u64.to_le_bytes());
        input.extend_from_slice(&4u64.to_le_bytes());
        assert_eq!(sum(&input).unwrap(), 7u64.to_le_bytes().to_vec());
        assert!(sum(b"odd").unwrap_err().contains("not /8"));
        assert_eq!(reg.get("echo").unwrap()(b"x").unwrap(), b"x".to_vec());
        assert_eq!(reg.get("fail").unwrap()(b"boom").unwrap_err(), "boom");
        assert!(reg.get("nope").is_none());
        assert!(reg.names().contains(&"sleep".to_string()));
    }

    #[test]
    fn assemble_orders_deps_then_payload() {
        let mut blobs = HashMap::new();
        blobs.insert(1u64, Arc::new(b"AA".to_vec()));
        blobs.insert(2u64, Arc::new(b"BB".to_vec()));
        let job = JobSpec {
            task: 9,
            attempt: 1,
            function: Arc::from("echo"),
            deps: vec![2, 1],
            payload: b"CC".to_vec(),
        };
        assert_eq!(assemble_input(&blobs, &job).unwrap(), b"BBAACC".to_vec());
        let missing = JobSpec {
            deps: vec![3],
            ..job
        };
        assert!(assemble_input(&blobs, &missing)
            .unwrap_err()
            .contains("missing input blob 3"));
    }

    #[test]
    fn threaded_fabric_round_trip() {
        let fabric = ThreadedFabric::new(&[("a", 2), ("b", 1)], &FabricTiming::fast());
        assert_eq!(fabric.n_endpoints(), 2);
        assert_eq!(fabric.n_workers(0), 2);
        assert_eq!(fabric.probe(1), ProbeState::Alive);

        let blob = Arc::new(b"hello ".to_vec());
        fabric.stage(1, 7, &blob);
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            1,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![7],
                payload: b"world".to_vec(),
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got, b"hello world".to_vec());
    }

    #[test]
    fn threaded_fabric_errors_without_losing_completion() {
        let fabric = ThreadedFabric::new(&[("a", 1)], &FabricTiming::fast());
        let (tx, rx) = mpsc::channel();
        // Unknown function.
        let tx2 = tx.clone();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("nope"),
                deps: vec![],
                payload: vec![],
            },
            Box::new(move |r| tx2.send(r).unwrap()),
        );
        assert!(rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap_err()
            .contains("unknown function"));
        // Missing staged blob.
        fabric.submit(
            0,
            JobSpec {
                task: 2,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![42],
                payload: vec![],
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert!(rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap_err()
            .contains("missing input blob"));
    }

    #[test]
    fn threaded_fabric_down_pool_fails_probe() {
        let fabric = ThreadedFabric::new(&[("a", 1)], &FabricTiming::fast());
        fabric.pool(0).faults().set_down(true);
        assert_eq!(fabric.probe(0), ProbeState::Dead);
        fabric.pool(0).faults().set_down(false);
        assert_eq!(fabric.probe(0), ProbeState::Alive);
    }
}
