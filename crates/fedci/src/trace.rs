//! The fedci-layer trace taxonomy: pre-interned labels and emit helpers
//! for endpoint queue/execute, transfer and fault events.
//!
//! `fedci` components are passive state machines driven by a runtime, so
//! rather than owning a tracer they define the *vocabulary* of substrate
//! events here. A runtime interns the taxonomy once at startup
//! ([`FedciTraceLabels::new`]) and calls the emit helpers at the points
//! where it drives the corresponding fedci state change. This keeps label
//! strings in one place and emit sites down to a pre-resolved-id call.
//!
//! Span names are stable strings (`"queued"`, `"executing"`, `"transfer"`,
//! …) so downstream tooling can filter on them; see DESIGN.md
//! "Observability" for the full event taxonomy.

use crate::endpoint::EndpointId;
use simkit::trace::{LabelId, Tracer};
use simkit::SimTime;

/// Pre-interned labels for the fedci substrate events.
#[derive(Clone, Debug)]
pub struct FedciTraceLabels {
    /// Span: a task sitting in an endpoint's local queue.
    pub queued: LabelId,
    /// Span: a task occupying a worker.
    pub executing: LabelId,
    /// Span: a data transfer between endpoints.
    pub transfer: LabelId,
    /// Instant: a transfer attempt failed (arg = attempt number).
    pub fault_transfer: LabelId,
    /// Instant: a task execution failed (arg = endpoint id).
    pub fault_task: LabelId,
    /// Instant: endpoint capacity changed (arg = new worker count).
    pub capacity: LabelId,
    /// Instant: endpoint health-state transition (arg = state code:
    /// 0 healthy, 1 suspect, 2 down, 3 recovering).
    pub health: LabelId,
    /// Instant: a failed task attempt is being retried (arg = attempt).
    pub retry: LabelId,
    /// Counter: busy workers per endpoint (one label per endpoint).
    pub busy: Vec<LabelId>,
    /// One display track per endpoint.
    pub tracks: Vec<LabelId>,
}

impl FedciTraceLabels {
    /// Interns the fedci taxonomy into `tracer`, one track and one busy
    /// counter per endpoint label.
    pub fn new(tracer: &mut Tracer, endpoint_labels: &[String]) -> FedciTraceLabels {
        FedciTraceLabels {
            queued: tracer.intern("queued"),
            executing: tracer.intern("executing"),
            transfer: tracer.intern("transfer"),
            fault_transfer: tracer.intern("fault.transfer"),
            fault_task: tracer.intern("fault.task"),
            capacity: tracer.intern("capacity"),
            health: tracer.intern("health"),
            retry: tracer.intern("retry.task"),
            busy: endpoint_labels
                .iter()
                .map(|l| tracer.intern(&format!("busy.{l}")))
                .collect(),
            tracks: endpoint_labels.iter().map(|l| tracer.intern(l)).collect(),
        }
    }

    /// Records an endpoint's busy-worker count after an occupy/release.
    #[inline]
    pub fn busy_workers(&self, tracer: &mut Tracer, at: SimTime, ep: EndpointId, busy: usize) {
        tracer.counter(at, self.busy[ep.index()], busy as f64);
    }

    /// Records a task-execution fault on `ep`'s track.
    #[inline]
    pub fn task_fault(&self, tracer: &mut Tracer, at: SimTime, ep: EndpointId, task_id: u64) {
        tracer.instant(
            at,
            self.fault_task,
            self.tracks[ep.index()],
            task_id,
            ep.0 as i64,
        );
    }

    /// Records a transfer-attempt fault on the destination's track.
    #[inline]
    pub fn transfer_fault(
        &self,
        tracer: &mut Tracer,
        at: SimTime,
        dst: EndpointId,
        xfer_id: u64,
        attempt: u32,
    ) {
        tracer.instant(
            at,
            self.fault_transfer,
            self.tracks[dst.index()],
            xfer_id,
            attempt as i64,
        );
    }

    /// Records a health-state transition on `ep`'s track (`state_code` as
    /// documented on [`FedciTraceLabels::health`]).
    #[inline]
    pub fn health_transition(
        &self,
        tracer: &mut Tracer,
        at: SimTime,
        ep: EndpointId,
        state_code: u32,
    ) {
        tracer.instant(
            at,
            self.health,
            self.tracks[ep.index()],
            ep.0 as u64,
            state_code as i64,
        );
    }

    /// Records a task retry on `ep`'s track (the endpoint the attempt
    /// failed on; `attempt` is the failure count so far).
    #[inline]
    pub fn task_retry(
        &self,
        tracer: &mut Tracer,
        at: SimTime,
        ep: EndpointId,
        task_id: u64,
        attempt: u32,
    ) {
        tracer.instant(
            at,
            self.retry,
            self.tracks[ep.index()],
            task_id,
            attempt as i64,
        );
    }

    /// Records a capacity change (scale-out/in, outage, commission).
    #[inline]
    pub fn capacity_change(
        &self,
        tracer: &mut Tracer,
        at: SimTime,
        ep: EndpointId,
        workers: usize,
    ) {
        tracer.instant(
            at,
            self.capacity,
            self.tracks[ep.index()],
            ep.0 as u64,
            workers as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::trace::TraceLevel;

    #[test]
    fn taxonomy_interned_per_endpoint() {
        let mut tr = Tracer::new(TraceLevel::Full, 64);
        let labels = FedciTraceLabels::new(&mut tr, &["Taiyi".to_string(), "Qiming".to_string()]);
        assert_eq!(labels.tracks.len(), 2);
        assert_eq!(labels.busy.len(), 2);
        assert_eq!(tr.label(labels.tracks[0]), "Taiyi");
        assert_eq!(tr.label(labels.busy[1]), "busy.Qiming");

        labels.busy_workers(&mut tr, SimTime::from_secs(1), EndpointId(0), 3);
        labels.task_fault(&mut tr, SimTime::from_secs(2), EndpointId(1), 7);
        labels.transfer_fault(&mut tr, SimTime::from_secs(3), EndpointId(0), 9, 2);
        labels.capacity_change(&mut tr, SimTime::from_secs(4), EndpointId(1), 16);
        assert_eq!(tr.len(), 4);
        labels.health_transition(&mut tr, SimTime::from_secs(5), EndpointId(0), 2);
        labels.task_retry(&mut tr, SimTime::from_secs(6), EndpointId(1), 7, 2);
        assert_eq!(tr.len(), 6);
        let snap = tr.counters_snapshot();
        assert!(snap.contains("busy.Taiyi 3"), "snapshot: {snap}");
    }

    #[test]
    fn helpers_are_noops_on_disabled_tracer() {
        let mut tr = Tracer::disabled();
        let labels = FedciTraceLabels::new(&mut tr, &["a".to_string()]);
        labels.busy_workers(&mut tr, SimTime::ZERO, EndpointId(0), 1);
        labels.capacity_change(&mut tr, SimTime::ZERO, EndpointId(0), 8);
        assert!(tr.is_empty());
    }
}
