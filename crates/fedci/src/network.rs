//! Wide-area network topology between endpoints.
//!
//! Each ordered endpoint pair has a link with a bandwidth and a propagation
//! latency. Bandwidth on a pair is shared equally among that pair's active
//! transfers up to the mechanism's concurrency limit (additional transfers
//! queue in the data manager). This "fixed fair share at start" model keeps
//! transfer completion times computable when a transfer begins — the same
//! property the paper's transfer profiler relies on when it predicts
//! transfer time from `(bandwidth, size, max concurrent transfers)`.

use crate::endpoint::EndpointId;
use simkit::SimDuration;

/// One directed link's characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl Link {
    /// A LAN-class link (10 GbE, sub-millisecond latency).
    pub fn lan() -> Self {
        Link {
            bandwidth_bps: 1.25e9,
            latency: SimDuration::from_micros(500),
        }
    }

    /// A fast campus/metro link.
    pub fn campus() -> Self {
        Link {
            bandwidth_bps: 500.0 * 1024.0 * 1024.0,
            latency: SimDuration::from_millis(2),
        }
    }

    /// A wide-area research link (the common case between sites). The
    /// bandwidth is calibrated to the paper's observed behaviour: tens of
    /// GB moved over thousands of seconds implies shared links sustaining
    /// on the order of 20 MB/s per endpoint pair.
    pub fn wan() -> Self {
        Link {
            bandwidth_bps: 20.0 * 1024.0 * 1024.0,
            latency: SimDuration::from_millis(20),
        }
    }
}

/// Topology over all endpoints (including the home/submitting endpoint).
///
/// Stored as a dense row-major n×n link table built once at construction:
/// [`NetworkTopology::link`] and [`NetworkTopology::share_bps`] are plain
/// array reads on the data manager's and the transfer profiler's hot
/// paths, with no hashing. The diagonal holds the infinite-bandwidth
/// "shared filesystem" pseudo-link, so same-endpoint lookups need no
/// branch either.
#[derive(Clone, Debug)]
pub struct NetworkTopology {
    n: usize,
    links: Vec<Link>,
}

impl NetworkTopology {
    /// The link used for same-endpoint "transfers": effectively infinite
    /// (a shared filesystem, not a network hop).
    fn local_link() -> Link {
        Link {
            bandwidth_bps: f64::INFINITY,
            latency: SimDuration::ZERO,
        }
    }

    /// Creates a topology where every distinct pair uses `default_link`.
    pub fn uniform(n_endpoints: usize, default_link: Link) -> Self {
        let n = n_endpoints;
        let mut links = vec![default_link; n * n];
        for i in 0..n {
            links[i * n + i] = Self::local_link();
        }
        NetworkTopology { n, links }
    }

    /// Number of endpoints.
    pub fn n_endpoints(&self) -> usize {
        self.n
    }

    /// Dense row-major index of an ordered endpoint pair; also used by the
    /// data manager to key its own per-pair tables.
    #[inline]
    pub fn pair_id(&self, src: EndpointId, dst: EndpointId) -> usize {
        assert!(
            src.index() < self.n && dst.index() < self.n,
            "endpoint out of range"
        );
        src.index() * self.n + dst.index()
    }

    /// Overrides the link between a specific pair (both directions).
    /// Same-endpoint links cannot be overridden (always local).
    pub fn set_link(&mut self, a: EndpointId, b: EndpointId, link: Link) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "endpoint out of range"
        );
        if a == b {
            return;
        }
        self.links[a.index() * self.n + b.index()] = link;
        self.links[b.index() * self.n + a.index()] = link;
    }

    /// The link from `src` to `dst`. Same-endpoint "transfers" get an
    /// effectively infinite link (shared filesystem).
    #[inline]
    pub fn link(&self, src: EndpointId, dst: EndpointId) -> Link {
        self.links[self.pair_id(src, dst)]
    }

    /// Fair bandwidth share for one of `active` concurrent transfers on the
    /// `src → dst` link.
    pub fn share_bps(&self, src: EndpointId, dst: EndpointId, active: usize) -> f64 {
        let link = self.link(src, dst);
        link.bandwidth_bps / active.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u16) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn uniform_default_and_override() {
        let mut net = NetworkTopology::uniform(3, Link::wan());
        assert_eq!(net.link(ep(0), ep(1)), Link::wan());
        net.set_link(ep(0), ep(2), Link::campus());
        assert_eq!(net.link(ep(0), ep(2)), Link::campus());
        assert_eq!(net.link(ep(2), ep(0)), Link::campus(), "symmetric");
        assert_eq!(net.link(ep(1), ep(2)), Link::wan());
    }

    #[test]
    fn local_transfers_are_free() {
        let net = NetworkTopology::uniform(2, Link::wan());
        let l = net.link(ep(1), ep(1));
        assert!(l.bandwidth_bps.is_infinite());
        assert_eq!(l.latency, SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_sharing() {
        let net = NetworkTopology::uniform(2, Link::wan());
        let full = net.share_bps(ep(0), ep(1), 1);
        let quarter = net.share_bps(ep(0), ep(1), 4);
        assert!((full / quarter - 4.0).abs() < 1e-9);
        // active = 0 treated as 1.
        assert_eq!(net.share_bps(ep(0), ep(1), 0), full);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let net = NetworkTopology::uniform(2, Link::wan());
        net.link(ep(0), ep(5));
    }

    #[test]
    fn link_presets_ordering() {
        assert!(Link::lan().bandwidth_bps > Link::campus().bandwidth_bps);
        assert!(Link::campus().bandwidth_bps > Link::wan().bandwidth_bps);
        assert!(Link::lan().latency < Link::wan().latency);
    }
}
