//! Deterministic fault injection.
//!
//! UniFaaS implements transfer retry and task reassignment (§IV-G). To
//! exercise those paths the substrate can inject three failure classes:
//! transfer failures (network conditions), task crashes (bad runtime
//! environments — optionally biased per endpoint), and endpoint outage
//! windows (disconnections). All draws come from a seeded stream, so a
//! failing run replays exactly.
//!
//! Outage windows are kept per endpoint, sorted and merged on insert, so
//! the hot-path [`FaultInjector::in_outage`] check is a binary search
//! rather than a scan of every window ever declared.

use crate::endpoint::EndpointId;
use simkit::{SimRng, SimTime};
use std::collections::HashMap;

/// Fault-injection configuration and state.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SimRng,
    /// Probability that any single transfer attempt fails.
    pub transfer_failure_prob: f64,
    /// Base probability that a task attempt crashes.
    pub task_failure_prob: f64,
    /// Extra per-endpoint crash probability (e.g. an endpoint with a broken
    /// environment for some function).
    endpoint_task_failure: HashMap<EndpointId, f64>,
    /// Outage windows per endpoint, sorted by start and non-overlapping
    /// (merged on insert). Tasks dispatched inside a window fail.
    outages: HashMap<EndpointId, Vec<(SimTime, SimTime)>>,
}

impl FaultInjector {
    /// Creates an injector with no faults.
    pub fn none(seed: u64) -> Self {
        FaultInjector {
            rng: SimRng::seed_from_u64(seed),
            transfer_failure_prob: 0.0,
            task_failure_prob: 0.0,
            endpoint_task_failure: HashMap::new(),
            outages: HashMap::new(),
        }
    }

    /// Creates an injector with the given base failure probabilities.
    pub fn with_probs(seed: u64, transfer_failure_prob: f64, task_failure_prob: f64) -> Self {
        FaultInjector {
            transfer_failure_prob,
            task_failure_prob,
            ..Self::none(seed)
        }
    }

    /// Adds extra crash probability for tasks on one endpoint.
    pub fn set_endpoint_task_failure(&mut self, ep: EndpointId, prob: f64) {
        self.endpoint_task_failure.insert(ep, prob);
    }

    /// Declares an outage window `[from, to)` on an endpoint. Windows that
    /// touch or overlap an existing one are merged.
    pub fn add_outage(&mut self, ep: EndpointId, from: SimTime, to: SimTime) {
        assert!(from < to, "outage window must be non-empty");
        let windows = self.outages.entry(ep).or_default();
        let at = windows.partition_point(|&(start, _)| start < from);
        windows.insert(at, (from, to));
        // Merge neighbours that touch or overlap, starting one to the left
        // (the predecessor may swallow the inserted window).
        let mut i = at.saturating_sub(1);
        while i + 1 < windows.len() {
            if windows[i].1 >= windows[i + 1].0 {
                windows[i].1 = windows[i].1.max(windows[i + 1].1);
                windows.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Draws whether a transfer attempt fails.
    pub fn transfer_fails(&mut self) -> bool {
        self.rng.chance(self.transfer_failure_prob)
    }

    /// Draws whether a task attempt on `ep` at `now` fails (outage windows
    /// fail deterministically; otherwise base + per-endpoint probability,
    /// clamped to [0, 1]).
    pub fn task_fails(&mut self, ep: EndpointId, now: SimTime) -> bool {
        if self.in_outage(ep, now) {
            return true;
        }
        let p = (self.task_failure_prob
            + self.endpoint_task_failure.get(&ep).copied().unwrap_or(0.0))
        .clamp(0.0, 1.0);
        self.rng.chance(p)
    }

    /// True if `ep` is inside an outage window at `now`.
    pub fn in_outage(&self, ep: EndpointId, now: SimTime) -> bool {
        let Some(windows) = self.outages.get(&ep) else {
            return false;
        };
        // Last window starting at or before `now`, if any, decides.
        let at = windows.partition_point(|&(start, _)| start <= now);
        at > 0 && now < windows[at - 1].1
    }

    /// True if any outage window is declared.
    pub fn has_outages(&self) -> bool {
        !self.outages.is_empty()
    }

    /// All declared (merged) outage windows, sorted by endpoint then start —
    /// a stable order so runtimes can schedule outage events
    /// deterministically.
    pub fn outage_windows(&self) -> Vec<(EndpointId, SimTime, SimTime)> {
        let mut all: Vec<(EndpointId, SimTime, SimTime)> = self
            .outages
            .iter()
            .flat_map(|(&ep, ws)| ws.iter().map(move |&(from, to)| (ep, from, to)))
            .collect();
        all.sort();
        all
    }

    /// The end of the outage window covering `now` on `ep`, if any.
    pub fn outage_end(&self, ep: EndpointId, now: SimTime) -> Option<SimTime> {
        let windows = self.outages.get(&ep)?;
        let at = windows.partition_point(|&(start, _)| start <= now);
        (at > 0 && now < windows[at - 1].1).then(|| windows[at - 1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u16) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn no_faults_by_default() {
        let mut f = FaultInjector::none(1);
        for _ in 0..100 {
            assert!(!f.transfer_fails());
            assert!(!f.task_fails(ep(0), SimTime::ZERO));
        }
    }

    #[test]
    fn transfer_failure_rate_approximates_prob() {
        let mut f = FaultInjector::with_probs(2, 0.3, 0.0);
        let fails = (0..10_000).filter(|_| f.transfer_fails()).count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn endpoint_bias_adds_to_base() {
        let mut f = FaultInjector::with_probs(3, 0.0, 0.1);
        f.set_endpoint_task_failure(ep(1), 0.4);
        let biased = (0..10_000)
            .filter(|_| f.task_fails(ep(1), SimTime::ZERO))
            .count() as f64
            / 10_000.0;
        assert!((biased - 0.5).abs() < 0.03, "biased={biased}");
        let base = (0..10_000)
            .filter(|_| f.task_fails(ep(0), SimTime::ZERO))
            .count() as f64
            / 10_000.0;
        assert!((base - 0.1).abs() < 0.02, "base={base}");
    }

    #[test]
    fn combined_probability_is_clamped() {
        let mut f = FaultInjector::with_probs(6, 0.0, 0.8);
        f.set_endpoint_task_failure(ep(0), 0.8);
        // 0.8 + 0.8 clamps to 1.0: every attempt fails, none panics.
        for _ in 0..100 {
            assert!(f.task_fails(ep(0), SimTime::ZERO));
        }
    }

    #[test]
    fn outage_windows_fail_deterministically() {
        let mut f = FaultInjector::none(4);
        f.add_outage(ep(0), SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!f.task_fails(ep(0), SimTime::from_secs(9)));
        assert!(f.task_fails(ep(0), SimTime::from_secs(10)));
        assert!(f.task_fails(ep(0), SimTime::from_secs(19)));
        assert!(!f.task_fails(ep(0), SimTime::from_secs(20)));
        assert!(!f.task_fails(ep(1), SimTime::from_secs(15)), "other ep ok");
        assert!(f.in_outage(ep(0), SimTime::from_secs(15)));
    }

    #[test]
    fn overlapping_windows_merge() {
        let mut f = FaultInjector::none(8);
        f.add_outage(ep(0), SimTime::from_secs(10), SimTime::from_secs(20));
        f.add_outage(ep(0), SimTime::from_secs(30), SimTime::from_secs(40));
        f.add_outage(ep(0), SimTime::from_secs(15), SimTime::from_secs(32));
        assert_eq!(
            f.outage_windows(),
            vec![(ep(0), SimTime::from_secs(10), SimTime::from_secs(40))]
        );
        assert!(f.in_outage(ep(0), SimTime::from_secs(25)));
        assert_eq!(
            f.outage_end(ep(0), SimTime::from_secs(25)),
            Some(SimTime::from_secs(40))
        );
        assert_eq!(f.outage_end(ep(0), SimTime::from_secs(40)), None);
    }

    #[test]
    fn adjacent_windows_merge_and_disjoint_stay_separate() {
        let mut f = FaultInjector::none(9);
        f.add_outage(ep(0), SimTime::from_secs(20), SimTime::from_secs(30));
        f.add_outage(ep(0), SimTime::from_secs(10), SimTime::from_secs(20));
        f.add_outage(ep(1), SimTime::from_secs(5), SimTime::from_secs(6));
        assert_eq!(
            f.outage_windows(),
            vec![
                (ep(0), SimTime::from_secs(10), SimTime::from_secs(30)),
                (ep(1), SimTime::from_secs(5), SimTime::from_secs(6)),
            ]
        );
        let mut g = FaultInjector::none(9);
        g.add_outage(ep(0), SimTime::from_secs(10), SimTime::from_secs(20));
        g.add_outage(ep(0), SimTime::from_secs(25), SimTime::from_secs(30));
        assert_eq!(g.outage_windows().len(), 2);
        assert!(!g.in_outage(ep(0), SimTime::from_secs(22)));
    }

    #[test]
    fn in_outage_scales_past_many_windows() {
        let mut f = FaultInjector::none(10);
        for i in 0..1000u64 {
            f.add_outage(
                ep(0),
                SimTime::from_secs(10 * i),
                SimTime::from_secs(10 * i + 5),
            );
        }
        assert!(f.in_outage(ep(0), SimTime::from_secs(5003)));
        assert!(!f.in_outage(ep(0), SimTime::from_secs(5007)));
        assert!(f.has_outages());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_window_panics() {
        let mut f = FaultInjector::none(5);
        f.add_outage(ep(0), SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultInjector::with_probs(7, 0.5, 0.5);
        let mut b = FaultInjector::with_probs(7, 0.5, 0.5);
        for _ in 0..100 {
            assert_eq!(a.transfer_fails(), b.transfer_fails());
            assert_eq!(
                a.task_fails(ep(0), SimTime::ZERO),
                b.task_fails(ep(0), SimTime::ZERO)
            );
        }
    }
}
