//! The process fabric's wire protocol.
//!
//! One frame = `[u32 LE length][u16 LE kind][body]`, where `length` covers
//! the kind tag plus the body (so every valid frame has `length >= 2`).
//! Multi-byte integers are little-endian; strings are `u16` length +
//! UTF-8 bytes; byte blobs are `u32` length + bytes.
//!
//! The codec is written for adversarial input: a frame header is fully
//! validated **before** any allocation (a claimed length beyond
//! [`MAX_FRAME`] is rejected without reserving a byte), truncated bodies
//! and trailing garbage are hard errors, and decode never panics — the
//! proptests in `crates/fedci/tests/proptest_proto.rs` hold it to that.
//!
//! Message flow (client = the [`ProcessFabric`](crate::process::ProcessFabric)
//! manager, daemon = `unifaas-endpointd`):
//!
//! ```text
//! daemon → client   HELLO          once per connection: identity + generation
//! client → daemon   TRANSFER       stage an input blob        → TRANSFER_ACK
//! client → daemon   DISPATCH       run a function attempt     → RESULT
//! client → daemon   HEARTBEAT      liveness, seq-numbered,
//!                                  timestamped for clock sync → HEARTBEAT_ACK
//! client → daemon   POLL           queue-depth snapshot       → POLL_ACK
//! client → daemon   TELEMETRY_SUB  enable/disable daemon telemetry
//! daemon → client   TELEMETRY      batched trace events + metric deltas
//! client → daemon   DRAIN          finish queued work, stop   → DRAIN_ACK
//! ```
//!
//! The observability plane rides on three things: DISPATCH/RESULT carry
//! the span context `(task, attempt, generation)` so daemon-side spans
//! can be stitched to the client attempt that caused them; HEARTBEAT /
//! HEARTBEAT_ACK carry send/receive timestamps (client monotonic micros
//! out, daemon monotonic micros back, client stamp echoed) feeding the
//! NTP-style offset estimator in [`crate::clock`]; and TELEMETRY frames
//! batch-ship the daemon's trace ring ([`TelemetryEvent`]s in daemon
//! monotonic micros), cumulative counters, and execution-latency sketch
//! buckets back to the supervisor.

use std::io::{Read, Write};

/// Protocol revision carried in HELLO; peers with a different revision
/// must disconnect. Revision 2 added clock-sync timestamps on the
/// heartbeat exchange, the `generation` span context on DISPATCH/RESULT,
/// and the TELEMETRY_SUB/TELEMETRY pair.
pub const PROTO_VERSION: u16 = 2;

/// Upper bound on `length` (kind + body). Chosen comfortably above any
/// real frame so the only way to hit it is corruption or attack; checked
/// before allocating.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Most [`TelemetryEvent`]s a daemon packs into one TELEMETRY frame.
/// 8192 events × 29 bytes ≈ 232 KiB — far under [`MAX_FRAME`], so even a
/// full ring ships as a short burst of well-bounded frames.
pub const TEL_MAX_EVENTS: usize = 8192;

/// [`TelemetryEvent::stage`]: DISPATCH frame decoded on the daemon
/// (`arg` = queue depth at that instant).
pub const TEL_STAGE_RECV: u8 = 1;
/// [`TelemetryEvent::stage`]: a worker began executing (`arg` unused).
pub const TEL_STAGE_EXEC_BEGIN: u8 = 2;
/// [`TelemetryEvent::stage`]: execution finished (`arg` = 1 ok, 0 error).
pub const TEL_STAGE_EXEC_END: u8 = 3;
/// [`TelemetryEvent::stage`]: the RESULT frame was written to the socket
/// (`arg` = 1 ok, 0 error).
pub const TEL_STAGE_SENT: u8 = 4;
/// [`TelemetryEvent::stage`]: chaos swallowed the attempt — no RESULT
/// will ever come (`arg` unused).
pub const TEL_STAGE_CHAOS_SWALLOW: u8 = 5;
/// [`TelemetryEvent::stage`]: chaos delayed the attempt (`arg` = ms).
pub const TEL_STAGE_CHAOS_DELAY: u8 = 6;

/// Telemetry counter code: DISPATCH frames received.
pub const TEL_CTR_DISPATCHES: u16 = 1;
/// Telemetry counter code: attempts that produced an ok RESULT.
pub const TEL_CTR_RESULTS_OK: u16 = 2;
/// Telemetry counter code: attempts that produced an error RESULT.
pub const TEL_CTR_RESULTS_ERR: u16 = 3;
/// Telemetry counter code: attempts swallowed by chaos injection.
pub const TEL_CTR_CHAOS_SWALLOWED: u16 = 4;
/// Telemetry counter code: attempts delayed by chaos injection.
pub const TEL_CTR_CHAOS_DELAYS: u16 = 5;
/// Telemetry counter code: trace events dropped by the daemon ring.
pub const TEL_CTR_RING_DROPPED: u16 = 6;

/// One daemon-side trace event, stamped in the daemon's local monotonic
/// clock (micros since daemon start). The client maps `t_us` onto its own
/// timeline with the per-generation clock offset from [`crate::clock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// What happened — one of the `TEL_STAGE_*` codes. Unknown codes
    /// pass through the codec untouched (forward compatibility).
    pub stage: u8,
    /// Daemon monotonic micros since daemon start.
    pub t_us: u64,
    /// Task id the event belongs to.
    pub task: u64,
    /// Attempt number the event belongs to.
    pub attempt: u32,
    /// Stage-specific argument (see the `TEL_STAGE_*` docs).
    pub arg: u64,
}

/// Decode/IO failures. Every variant is a clean error — no panics, no
/// partial state.
#[derive(Debug)]
pub enum ProtoError {
    /// The input ended before the frame did.
    Truncated,
    /// The header claims a length over [`MAX_FRAME`] (or under the
    /// 2-byte kind tag).
    Oversized(u32),
    /// Unrecognized kind tag.
    UnknownKind(u16),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Bytes left over after a complete message was decoded.
    TrailingBytes(usize),
    /// A field held a value the encoder can never produce (e.g. a bool
    /// byte other than 0/1) — rejected so the codec stays a bijection on
    /// its valid set.
    Malformed(&'static str),
    /// Underlying socket/file error.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized(n) => write!(f, "frame length {n} out of bounds"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            ProtoError::Malformed(what) => write!(f, "malformed field: {what}"),
            ProtoError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Every message the process fabric exchanges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Daemon → client, once per connection: who am I, how many workers,
    /// and which spawn *generation* — a client that respawned the daemon
    /// knows whether it is talking to the incarnation it expects.
    Hello {
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u16,
        /// Endpoint name.
        name: String,
        /// Worker thread count.
        workers: u32,
        /// Spawn generation (incremented by the supervisor per respawn).
        generation: u64,
    },
    /// Client → daemon: execute one attempt of a task.
    Dispatch {
        /// Task id (stable across attempts).
        task: u64,
        /// Attempt number — echoed in RESULT; the client drops stale ones.
        attempt: u32,
        /// Span context: the daemon generation the client believes it is
        /// dispatching to (from HELLO). Lets daemon-side telemetry be
        /// stitched to the exact client attempt → incarnation pair.
        generation: u64,
        /// Registered function name.
        function: String,
        /// Staged blob keys, concatenated in order as the input prefix.
        deps: Vec<u64>,
        /// Inline argument bytes, appended after the dep blobs.
        payload: Vec<u8>,
    },
    /// Daemon → client: outcome of one dispatch.
    Result {
        /// Task id from the dispatch.
        task: u64,
        /// Attempt from the dispatch (the exactly-once guard).
        attempt: u32,
        /// Span context: the generation of the daemon incarnation that
        /// actually executed this attempt — a replay from a resurrected
        /// daemon is distinguishable from a fresh result.
        generation: u64,
        /// 1 = payload is the function result; 0 = payload is an
        /// error message.
        ok: bool,
        /// Result bytes or UTF-8 error message.
        payload: Vec<u8>,
    },
    /// Client → daemon: request a queue-depth snapshot.
    Poll,
    /// Daemon → client: answer to [`Frame::Poll`].
    PollAck {
        /// Workers currently executing.
        busy: u32,
        /// Jobs queued and not yet started.
        queued: u32,
        /// Jobs completed since the daemon started.
        completed: u64,
    },
    /// Client → daemon: stage blob `key` for later dispatch deps.
    Transfer {
        /// Blob key.
        key: u64,
        /// Blob bytes.
        payload: Vec<u8>,
    },
    /// Daemon → client: blob stored.
    TransferAck {
        /// Blob key being acknowledged.
        key: u64,
        /// Bytes stored.
        stored: u64,
    },
    /// Client → daemon: liveness probe, doubling as a clock-sync probe.
    Heartbeat {
        /// Monotone sequence number per connection.
        seq: u64,
        /// Client monotonic micros when the probe left — NTP `t0`,
        /// echoed back in the ack so the client never has to remember
        /// which probe an ack answers.
        t_client_us: u64,
    },
    /// Daemon → client: answer to [`Frame::Heartbeat`].
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
        /// Workers currently executing (free liveness piggyback).
        busy: u32,
        /// Echo of the probe's `t_client_us` (NTP `t0`).
        t_client_us: u64,
        /// Daemon monotonic micros when the probe was handled — NTP
        /// `t1`≈`t2` (turnaround inside the daemon is sub-millisecond).
        t_daemon_us: u64,
    },
    /// Client → daemon: finish queued work, then exit cleanly.
    Drain,
    /// Daemon → client: drain accepted.
    DrainAck {
        /// Jobs still queued or executing at the time of the ack.
        remaining: u32,
    },
    /// Client → daemon: subscribe to (or mute) the daemon's telemetry
    /// stream. Strictly opt-in: a daemon never ships TELEMETRY frames
    /// unsolicited, so a telemetry-off client sees a byte-identical
    /// conversation.
    TelemetrySub {
        /// 0 = off, 1 = spans, 2 = full — mirrors
        /// `simkit::trace::TraceLevel`.
        level: u8,
    },
    /// Daemon → client: a batch of trace events plus metric state,
    /// shipped opportunistically on the heartbeat cadence and flushed
    /// once more on DRAIN.
    Telemetry {
        /// The sending incarnation's spawn generation. The client drops
        /// batches whose generation is not the one it is connected to —
        /// a resurrected daemon's replayed telemetry never merges.
        generation: u64,
        /// Per-generation batch sequence number, strictly increasing;
        /// the client drops reordered or replayed batches.
        seq: u64,
        /// Trace events in daemon monotonic time, oldest first.
        events: Vec<TelemetryEvent>,
        /// Cumulative (since daemon start) counters as
        /// (`TEL_CTR_*`, value) pairs — cumulative, not deltas, so a
        /// lost batch undercounts nothing.
        counters: Vec<(u16, u64)>,
        /// Cumulative execution-latency sketch as sparse
        /// `LogHistogram` bucket counts (`bucket_counts()` form).
        exec_buckets: Vec<(i32, u64)>,
    },
}

impl Frame {
    /// The frame's kind tag.
    pub fn kind(&self) -> u16 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Dispatch { .. } => 2,
            Frame::Result { .. } => 3,
            Frame::Poll => 4,
            Frame::PollAck { .. } => 5,
            Frame::Transfer { .. } => 6,
            Frame::TransferAck { .. } => 7,
            Frame::Heartbeat { .. } => 8,
            Frame::HeartbeatAck { .. } => 9,
            Frame::Drain => 10,
            Frame::DrainAck { .. } => 11,
            Frame::TelemetrySub { .. } => 12,
            Frame::Telemetry { .. } => 13,
        }
    }

    /// Encodes the frame, header included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.kind().to_le_bytes());
        match self {
            Frame::Hello {
                proto,
                name,
                workers,
                generation,
            } => {
                body.extend_from_slice(&proto.to_le_bytes());
                put_str(&mut body, name);
                body.extend_from_slice(&workers.to_le_bytes());
                body.extend_from_slice(&generation.to_le_bytes());
            }
            Frame::Dispatch {
                task,
                attempt,
                generation,
                function,
                deps,
                payload,
            } => {
                body.extend_from_slice(&task.to_le_bytes());
                body.extend_from_slice(&attempt.to_le_bytes());
                body.extend_from_slice(&generation.to_le_bytes());
                put_str(&mut body, function);
                body.extend_from_slice(&(deps.len() as u16).to_le_bytes());
                for d in deps {
                    body.extend_from_slice(&d.to_le_bytes());
                }
                put_bytes(&mut body, payload);
            }
            Frame::Result {
                task,
                attempt,
                generation,
                ok,
                payload,
            } => {
                body.extend_from_slice(&task.to_le_bytes());
                body.extend_from_slice(&attempt.to_le_bytes());
                body.extend_from_slice(&generation.to_le_bytes());
                body.push(u8::from(*ok));
                put_bytes(&mut body, payload);
            }
            Frame::Poll | Frame::Drain => {}
            Frame::PollAck {
                busy,
                queued,
                completed,
            } => {
                body.extend_from_slice(&busy.to_le_bytes());
                body.extend_from_slice(&queued.to_le_bytes());
                body.extend_from_slice(&completed.to_le_bytes());
            }
            Frame::Transfer { key, payload } => {
                body.extend_from_slice(&key.to_le_bytes());
                put_bytes(&mut body, payload);
            }
            Frame::TransferAck { key, stored } => {
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&stored.to_le_bytes());
            }
            Frame::Heartbeat { seq, t_client_us } => {
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&t_client_us.to_le_bytes());
            }
            Frame::HeartbeatAck {
                seq,
                busy,
                t_client_us,
                t_daemon_us,
            } => {
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&busy.to_le_bytes());
                body.extend_from_slice(&t_client_us.to_le_bytes());
                body.extend_from_slice(&t_daemon_us.to_le_bytes());
            }
            Frame::DrainAck { remaining } => {
                body.extend_from_slice(&remaining.to_le_bytes());
            }
            Frame::TelemetrySub { level } => {
                body.push(*level);
            }
            Frame::Telemetry {
                generation,
                seq,
                events,
                counters,
                exec_buckets,
            } => {
                body.extend_from_slice(&generation.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for e in events {
                    body.push(e.stage);
                    body.extend_from_slice(&e.t_us.to_le_bytes());
                    body.extend_from_slice(&e.task.to_le_bytes());
                    body.extend_from_slice(&e.attempt.to_le_bytes());
                    body.extend_from_slice(&e.arg.to_le_bytes());
                }
                body.extend_from_slice(&(counters.len() as u16).to_le_bytes());
                for (code, value) in counters {
                    body.extend_from_slice(&code.to_le_bytes());
                    body.extend_from_slice(&value.to_le_bytes());
                }
                body.extend_from_slice(&(exec_buckets.len() as u16).to_le_bytes());
                for (bucket, count) in exec_buckets {
                    body.extend_from_slice(&bucket.to_le_bytes());
                    body.extend_from_slice(&count.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame from `buf`, which must contain exactly the frame
    /// (header included) and nothing else.
    pub fn decode(buf: &[u8]) -> Result<Frame, ProtoError> {
        let mut c = Cursor { buf, pos: 0 };
        let len = c.u32()?;
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(ProtoError::Oversized(len));
        }
        if buf.len() as u64 - 4 != len as u64 {
            return if (buf.len() as u64) < 4 + len as u64 {
                Err(ProtoError::Truncated)
            } else {
                Err(ProtoError::TrailingBytes(buf.len() - 4 - len as usize))
            };
        }
        let frame = decode_body(&mut c)?;
        if c.pos != buf.len() {
            return Err(ProtoError::TrailingBytes(buf.len() - c.pos));
        }
        Ok(frame)
    }

    /// Reads one frame from `r` (blocking). The length header is bounds
    /// checked before the body buffer is allocated, so a hostile peer
    /// cannot make the reader reserve [`MAX_FRAME`]-scale memory with a
    /// 4-byte header alone — the allocation happens only once, capped.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
        let mut head = [0u8; 4];
        read_exact_or_truncated(r, &mut head)?;
        let len = u32::from_le_bytes(head);
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(ProtoError::Oversized(len));
        }
        let mut body = vec![0u8; len as usize];
        read_exact_or_truncated(r, &mut body)?;
        let mut c = Cursor { buf: &body, pos: 0 };
        let frame = decode_body(&mut c)?;
        if c.pos != body.len() {
            return Err(ProtoError::TrailingBytes(body.len() - c.pos));
        }
        Ok(frame)
    }

    /// Writes the encoded frame to `w` and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), ProtoError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

fn decode_body(c: &mut Cursor<'_>) -> Result<Frame, ProtoError> {
    let kind = c.u16()?;
    Ok(match kind {
        1 => Frame::Hello {
            proto: c.u16()?,
            name: c.string()?,
            workers: c.u32()?,
            generation: c.u64()?,
        },
        2 => {
            let task = c.u64()?;
            let attempt = c.u32()?;
            let generation = c.u64()?;
            let function = c.string()?;
            let n = c.u16()? as usize;
            let mut deps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                deps.push(c.u64()?);
            }
            let payload = c.bytes()?;
            Frame::Dispatch {
                task,
                attempt,
                generation,
                function,
                deps,
                payload,
            }
        }
        3 => Frame::Result {
            task: c.u64()?,
            attempt: c.u32()?,
            generation: c.u64()?,
            ok: c.bool()?,
            payload: c.bytes()?,
        },
        4 => Frame::Poll,
        5 => Frame::PollAck {
            busy: c.u32()?,
            queued: c.u32()?,
            completed: c.u64()?,
        },
        6 => Frame::Transfer {
            key: c.u64()?,
            payload: c.bytes()?,
        },
        7 => Frame::TransferAck {
            key: c.u64()?,
            stored: c.u64()?,
        },
        8 => Frame::Heartbeat {
            seq: c.u64()?,
            t_client_us: c.u64()?,
        },
        9 => Frame::HeartbeatAck {
            seq: c.u64()?,
            busy: c.u32()?,
            t_client_us: c.u64()?,
            t_daemon_us: c.u64()?,
        },
        10 => Frame::Drain,
        11 => Frame::DrainAck {
            remaining: c.u32()?,
        },
        12 => Frame::TelemetrySub { level: c.u8()? },
        13 => {
            let generation = c.u64()?;
            let seq = c.u64()?;
            let n = c.u32()? as usize;
            let mut events = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                events.push(TelemetryEvent {
                    stage: c.u8()?,
                    t_us: c.u64()?,
                    task: c.u64()?,
                    attempt: c.u32()?,
                    arg: c.u64()?,
                });
            }
            let n = c.u16()? as usize;
            let mut counters = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                counters.push((c.u16()?, c.u64()?));
            }
            let n = c.u16()? as usize;
            let mut exec_buckets = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                exec_buckets.push((c.i32()?, c.u64()?));
            }
            Frame::Telemetry {
                generation,
                seq,
                events,
                counters,
                exec_buckets,
            }
        }
        k => return Err(ProtoError::UnknownKind(k)),
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// `read_exact` with EOF mapped to [`ProtoError::Truncated`]; other IO
/// errors pass through.
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ProtoError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(ProtoError::Truncated),
        Err(e) => Err(ProtoError::Io(e)),
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every accessor
/// fails with [`ProtoError::Truncated`] instead of slicing out of range;
/// variable-length fields validate the claimed length against the
/// remaining input before copying, so a hostile length cannot force an
/// allocation larger than the data actually present.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Strict bool: only 0/1 are valid, so decode(encode) stays a
    /// bijection even under single-byte corruption.
    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtoError::Malformed("bool byte out of range")),
        }
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                proto: PROTO_VERSION,
                name: "taiyi".into(),
                workers: 32,
                generation: 3,
            },
            Frame::Dispatch {
                task: 7,
                attempt: 2,
                generation: 4,
                function: "fnv".into(),
                deps: vec![1, 2, 3],
                payload: b"xyz".to_vec(),
            },
            Frame::Result {
                task: 7,
                attempt: 2,
                generation: 4,
                ok: true,
                payload: vec![0xde, 0xad],
            },
            Frame::Result {
                task: 8,
                attempt: 1,
                generation: 0,
                ok: false,
                payload: b"boom".to_vec(),
            },
            Frame::Poll,
            Frame::PollAck {
                busy: 3,
                queued: 9,
                completed: 1234,
            },
            Frame::Transfer {
                key: 42,
                payload: vec![1; 100],
            },
            Frame::TransferAck {
                key: 42,
                stored: 100,
            },
            Frame::Heartbeat {
                seq: 99,
                t_client_us: 123_456,
            },
            Frame::HeartbeatAck {
                seq: 99,
                busy: 2,
                t_client_us: 123_456,
                t_daemon_us: 7_890,
            },
            Frame::Drain,
            Frame::DrainAck { remaining: 5 },
            Frame::TelemetrySub { level: 2 },
            Frame::Telemetry {
                generation: 1,
                seq: 9,
                events: vec![
                    TelemetryEvent {
                        stage: TEL_STAGE_RECV,
                        t_us: 1_000,
                        task: 7,
                        attempt: 2,
                        arg: 3,
                    },
                    TelemetryEvent {
                        stage: TEL_STAGE_EXEC_END,
                        t_us: 2_000,
                        task: 7,
                        attempt: 2,
                        arg: 1,
                    },
                ],
                counters: vec![(TEL_CTR_DISPATCHES, 12), (TEL_CTR_RESULTS_OK, 11)],
                exec_buckets: vec![(i32::MIN, 1), (-3, 2), (17, 9)],
            },
            Frame::Telemetry {
                generation: 0,
                seq: 0,
                events: vec![],
                counters: vec![],
                exec_buckets: vec![],
            },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for f in all_frames() {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f, "decode(encode) != id");
            let mut r = std::io::Cursor::new(bytes.clone());
            assert_eq!(Frame::read_from(&mut r).unwrap(), f);
            let mut w = Vec::new();
            f.write_to(&mut w).unwrap();
            assert_eq!(w, bytes);
        }
    }

    #[test]
    fn stream_of_frames_reads_in_order() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut r = std::io::Cursor::new(stream);
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut r).unwrap(), f);
        }
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        for f in all_frames() {
            let bytes = f.encode();
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(got) => panic!("decoded {got:?} from {cut}/{} bytes", bytes.len()),
                }
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtoError::Oversized(_))
        ));
        // And from a reader claiming 4 GiB with only 4 real bytes: the
        // error must come back without trying to read (or allocate) more.
        let huge = u32::MAX.to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn zero_and_one_byte_lengths_rejected() {
        for len in [0u32, 1] {
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&vec![0; len as usize]);
            assert!(matches!(
                Frame::decode(&bytes),
                Err(ProtoError::Oversized(_))
            ));
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_rejected() {
        let mut bad = Frame::Poll.encode();
        bad[4] = 0xff; // kind := 0x00ff
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::UnknownKind(255))
        ));

        let mut trailing = Frame::Heartbeat {
            seq: 1,
            t_client_us: 0,
        }
        .encode();
        trailing.push(0);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(ProtoError::TrailingBytes(1))
        ));

        // Inner trailing bytes: length header admits one more byte than
        // the message consumes.
        let mut inner = Frame::Poll.encode();
        inner.push(7);
        let len = (inner.len() - 4) as u32;
        inner[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&inner),
            Err(ProtoError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_utf8_in_string_field_rejected() {
        let f = Frame::Hello {
            proto: 1,
            name: "ab".into(),
            workers: 1,
            generation: 0,
        };
        let mut bytes = f.encode();
        // name bytes start after len(4) + kind(2) + proto(2) + strlen(2).
        bytes[10] = 0xff;
        bytes[11] = 0xfe;
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::BadUtf8)));
    }

    #[test]
    fn errors_display() {
        let e = ProtoError::Oversized(99);
        assert!(e.to_string().contains("99"));
        assert!(ProtoError::Truncated.to_string().contains("truncated"));
        assert!(ProtoError::UnknownKind(7).to_string().contains('7'));
        assert!(ProtoError::TrailingBytes(3).to_string().contains('3'));
        assert!(ProtoError::BadUtf8.to_string().contains("UTF-8"));
        assert!(ProtoError::Malformed("bool").to_string().contains("bool"));
        let io = ProtoError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("io"));
    }

    #[test]
    fn non_canonical_bool_byte_rejected() {
        let f = Frame::Result {
            task: 1,
            attempt: 1,
            generation: 0,
            ok: true,
            payload: vec![],
        };
        let mut bytes = f.encode();
        // ok byte sits after len(4) + kind(2) + task(8) + attempt(4) + gen(8).
        bytes[26] = 2;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn full_telemetry_batch_fits_the_frame_cap() {
        let f = Frame::Telemetry {
            generation: u64::MAX,
            seq: u64::MAX,
            events: vec![
                TelemetryEvent {
                    stage: u8::MAX,
                    t_us: u64::MAX,
                    task: u64::MAX,
                    attempt: u32::MAX,
                    arg: u64::MAX,
                };
                TEL_MAX_EVENTS
            ],
            counters: vec![(u16::MAX, u64::MAX); 16],
            exec_buckets: vec![(i32::MIN, u64::MAX); 512],
        };
        let bytes = f.encode();
        assert!((bytes.len() as u32) < MAX_FRAME / 32, "batch far under cap");
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }
}
