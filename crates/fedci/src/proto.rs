//! The process fabric's wire protocol.
//!
//! One frame = `[u32 LE length][u16 LE kind][body]`, where `length` covers
//! the kind tag plus the body (so every valid frame has `length >= 2`).
//! Multi-byte integers are little-endian; strings are `u16` length +
//! UTF-8 bytes; byte blobs are `u32` length + bytes.
//!
//! The codec is written for adversarial input: a frame header is fully
//! validated **before** any allocation (a claimed length beyond
//! [`MAX_FRAME`] is rejected without reserving a byte), truncated bodies
//! and trailing garbage are hard errors, and decode never panics — the
//! proptests in `crates/fedci/tests/proptest_proto.rs` hold it to that.
//!
//! Message flow (client = the [`ProcessFabric`](crate::process::ProcessFabric)
//! manager, daemon = `unifaas-endpointd`):
//!
//! ```text
//! daemon → client   HELLO        once per connection: identity + generation
//! client → daemon   TRANSFER     stage an input blob        → TRANSFER_ACK
//! client → daemon   DISPATCH     run a function attempt     → RESULT
//! client → daemon   HEARTBEAT    liveness, seq-numbered     → HEARTBEAT_ACK
//! client → daemon   POLL         queue-depth snapshot       → POLL_ACK
//! client → daemon   DRAIN        finish queued work, stop   → DRAIN_ACK
//! ```

use std::io::{Read, Write};

/// Protocol revision carried in HELLO; peers with a different revision
/// must disconnect.
pub const PROTO_VERSION: u16 = 1;

/// Upper bound on `length` (kind + body). Chosen comfortably above any
/// real frame so the only way to hit it is corruption or attack; checked
/// before allocating.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Decode/IO failures. Every variant is a clean error — no panics, no
/// partial state.
#[derive(Debug)]
pub enum ProtoError {
    /// The input ended before the frame did.
    Truncated,
    /// The header claims a length over [`MAX_FRAME`] (or under the
    /// 2-byte kind tag).
    Oversized(u32),
    /// Unrecognized kind tag.
    UnknownKind(u16),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Bytes left over after a complete message was decoded.
    TrailingBytes(usize),
    /// Underlying socket/file error.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized(n) => write!(f, "frame length {n} out of bounds"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            ProtoError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Every message the process fabric exchanges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Daemon → client, once per connection: who am I, how many workers,
    /// and which spawn *generation* — a client that respawned the daemon
    /// knows whether it is talking to the incarnation it expects.
    Hello {
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u16,
        /// Endpoint name.
        name: String,
        /// Worker thread count.
        workers: u32,
        /// Spawn generation (incremented by the supervisor per respawn).
        generation: u64,
    },
    /// Client → daemon: execute one attempt of a task.
    Dispatch {
        /// Task id (stable across attempts).
        task: u64,
        /// Attempt number — echoed in RESULT; the client drops stale ones.
        attempt: u32,
        /// Registered function name.
        function: String,
        /// Staged blob keys, concatenated in order as the input prefix.
        deps: Vec<u64>,
        /// Inline argument bytes, appended after the dep blobs.
        payload: Vec<u8>,
    },
    /// Daemon → client: outcome of one dispatch.
    Result {
        /// Task id from the dispatch.
        task: u64,
        /// Attempt from the dispatch (the exactly-once guard).
        attempt: u32,
        /// 1 = payload is the function result; 0 = payload is an
        /// error message.
        ok: bool,
        /// Result bytes or UTF-8 error message.
        payload: Vec<u8>,
    },
    /// Client → daemon: request a queue-depth snapshot.
    Poll,
    /// Daemon → client: answer to [`Frame::Poll`].
    PollAck {
        /// Workers currently executing.
        busy: u32,
        /// Jobs queued and not yet started.
        queued: u32,
        /// Jobs completed since the daemon started.
        completed: u64,
    },
    /// Client → daemon: stage blob `key` for later dispatch deps.
    Transfer {
        /// Blob key.
        key: u64,
        /// Blob bytes.
        payload: Vec<u8>,
    },
    /// Daemon → client: blob stored.
    TransferAck {
        /// Blob key being acknowledged.
        key: u64,
        /// Bytes stored.
        stored: u64,
    },
    /// Client → daemon: liveness probe.
    Heartbeat {
        /// Monotone sequence number per connection.
        seq: u64,
    },
    /// Daemon → client: answer to [`Frame::Heartbeat`].
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
        /// Workers currently executing (free liveness piggyback).
        busy: u32,
    },
    /// Client → daemon: finish queued work, then exit cleanly.
    Drain,
    /// Daemon → client: drain accepted.
    DrainAck {
        /// Jobs still queued or executing at the time of the ack.
        remaining: u32,
    },
}

impl Frame {
    /// The frame's kind tag.
    pub fn kind(&self) -> u16 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Dispatch { .. } => 2,
            Frame::Result { .. } => 3,
            Frame::Poll => 4,
            Frame::PollAck { .. } => 5,
            Frame::Transfer { .. } => 6,
            Frame::TransferAck { .. } => 7,
            Frame::Heartbeat { .. } => 8,
            Frame::HeartbeatAck { .. } => 9,
            Frame::Drain => 10,
            Frame::DrainAck { .. } => 11,
        }
    }

    /// Encodes the frame, header included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.kind().to_le_bytes());
        match self {
            Frame::Hello {
                proto,
                name,
                workers,
                generation,
            } => {
                body.extend_from_slice(&proto.to_le_bytes());
                put_str(&mut body, name);
                body.extend_from_slice(&workers.to_le_bytes());
                body.extend_from_slice(&generation.to_le_bytes());
            }
            Frame::Dispatch {
                task,
                attempt,
                function,
                deps,
                payload,
            } => {
                body.extend_from_slice(&task.to_le_bytes());
                body.extend_from_slice(&attempt.to_le_bytes());
                put_str(&mut body, function);
                body.extend_from_slice(&(deps.len() as u16).to_le_bytes());
                for d in deps {
                    body.extend_from_slice(&d.to_le_bytes());
                }
                put_bytes(&mut body, payload);
            }
            Frame::Result {
                task,
                attempt,
                ok,
                payload,
            } => {
                body.extend_from_slice(&task.to_le_bytes());
                body.extend_from_slice(&attempt.to_le_bytes());
                body.push(u8::from(*ok));
                put_bytes(&mut body, payload);
            }
            Frame::Poll | Frame::Drain => {}
            Frame::PollAck {
                busy,
                queued,
                completed,
            } => {
                body.extend_from_slice(&busy.to_le_bytes());
                body.extend_from_slice(&queued.to_le_bytes());
                body.extend_from_slice(&completed.to_le_bytes());
            }
            Frame::Transfer { key, payload } => {
                body.extend_from_slice(&key.to_le_bytes());
                put_bytes(&mut body, payload);
            }
            Frame::TransferAck { key, stored } => {
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&stored.to_le_bytes());
            }
            Frame::Heartbeat { seq } => {
                body.extend_from_slice(&seq.to_le_bytes());
            }
            Frame::HeartbeatAck { seq, busy } => {
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&busy.to_le_bytes());
            }
            Frame::DrainAck { remaining } => {
                body.extend_from_slice(&remaining.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame from `buf`, which must contain exactly the frame
    /// (header included) and nothing else.
    pub fn decode(buf: &[u8]) -> Result<Frame, ProtoError> {
        let mut c = Cursor { buf, pos: 0 };
        let len = c.u32()?;
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(ProtoError::Oversized(len));
        }
        if buf.len() as u64 - 4 != len as u64 {
            return if (buf.len() as u64) < 4 + len as u64 {
                Err(ProtoError::Truncated)
            } else {
                Err(ProtoError::TrailingBytes(buf.len() - 4 - len as usize))
            };
        }
        let frame = decode_body(&mut c)?;
        if c.pos != buf.len() {
            return Err(ProtoError::TrailingBytes(buf.len() - c.pos));
        }
        Ok(frame)
    }

    /// Reads one frame from `r` (blocking). The length header is bounds
    /// checked before the body buffer is allocated, so a hostile peer
    /// cannot make the reader reserve [`MAX_FRAME`]-scale memory with a
    /// 4-byte header alone — the allocation happens only once, capped.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
        let mut head = [0u8; 4];
        read_exact_or_truncated(r, &mut head)?;
        let len = u32::from_le_bytes(head);
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(ProtoError::Oversized(len));
        }
        let mut body = vec![0u8; len as usize];
        read_exact_or_truncated(r, &mut body)?;
        let mut c = Cursor { buf: &body, pos: 0 };
        let frame = decode_body(&mut c)?;
        if c.pos != body.len() {
            return Err(ProtoError::TrailingBytes(body.len() - c.pos));
        }
        Ok(frame)
    }

    /// Writes the encoded frame to `w` and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), ProtoError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

fn decode_body(c: &mut Cursor<'_>) -> Result<Frame, ProtoError> {
    let kind = c.u16()?;
    Ok(match kind {
        1 => Frame::Hello {
            proto: c.u16()?,
            name: c.string()?,
            workers: c.u32()?,
            generation: c.u64()?,
        },
        2 => {
            let task = c.u64()?;
            let attempt = c.u32()?;
            let function = c.string()?;
            let n = c.u16()? as usize;
            let mut deps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                deps.push(c.u64()?);
            }
            let payload = c.bytes()?;
            Frame::Dispatch {
                task,
                attempt,
                function,
                deps,
                payload,
            }
        }
        3 => Frame::Result {
            task: c.u64()?,
            attempt: c.u32()?,
            ok: c.u8()? != 0,
            payload: c.bytes()?,
        },
        4 => Frame::Poll,
        5 => Frame::PollAck {
            busy: c.u32()?,
            queued: c.u32()?,
            completed: c.u64()?,
        },
        6 => Frame::Transfer {
            key: c.u64()?,
            payload: c.bytes()?,
        },
        7 => Frame::TransferAck {
            key: c.u64()?,
            stored: c.u64()?,
        },
        8 => Frame::Heartbeat { seq: c.u64()? },
        9 => Frame::HeartbeatAck {
            seq: c.u64()?,
            busy: c.u32()?,
        },
        10 => Frame::Drain,
        11 => Frame::DrainAck {
            remaining: c.u32()?,
        },
        k => return Err(ProtoError::UnknownKind(k)),
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// `read_exact` with EOF mapped to [`ProtoError::Truncated`]; other IO
/// errors pass through.
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ProtoError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(ProtoError::Truncated),
        Err(e) => Err(ProtoError::Io(e)),
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every accessor
/// fails with [`ProtoError::Truncated`] instead of slicing out of range;
/// variable-length fields validate the claimed length against the
/// remaining input before copying, so a hostile length cannot force an
/// allocation larger than the data actually present.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                proto: PROTO_VERSION,
                name: "taiyi".into(),
                workers: 32,
                generation: 3,
            },
            Frame::Dispatch {
                task: 7,
                attempt: 2,
                function: "fnv".into(),
                deps: vec![1, 2, 3],
                payload: b"xyz".to_vec(),
            },
            Frame::Result {
                task: 7,
                attempt: 2,
                ok: true,
                payload: vec![0xde, 0xad],
            },
            Frame::Result {
                task: 8,
                attempt: 1,
                ok: false,
                payload: b"boom".to_vec(),
            },
            Frame::Poll,
            Frame::PollAck {
                busy: 3,
                queued: 9,
                completed: 1234,
            },
            Frame::Transfer {
                key: 42,
                payload: vec![1; 100],
            },
            Frame::TransferAck {
                key: 42,
                stored: 100,
            },
            Frame::Heartbeat { seq: 99 },
            Frame::HeartbeatAck { seq: 99, busy: 2 },
            Frame::Drain,
            Frame::DrainAck { remaining: 5 },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for f in all_frames() {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f, "decode(encode) != id");
            let mut r = std::io::Cursor::new(bytes.clone());
            assert_eq!(Frame::read_from(&mut r).unwrap(), f);
            let mut w = Vec::new();
            f.write_to(&mut w).unwrap();
            assert_eq!(w, bytes);
        }
    }

    #[test]
    fn stream_of_frames_reads_in_order() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut r = std::io::Cursor::new(stream);
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut r).unwrap(), f);
        }
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        for f in all_frames() {
            let bytes = f.encode();
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(got) => panic!("decoded {got:?} from {cut}/{} bytes", bytes.len()),
                }
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtoError::Oversized(_))
        ));
        // And from a reader claiming 4 GiB with only 4 real bytes: the
        // error must come back without trying to read (or allocate) more.
        let huge = u32::MAX.to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn zero_and_one_byte_lengths_rejected() {
        for len in [0u32, 1] {
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&vec![0; len as usize]);
            assert!(matches!(
                Frame::decode(&bytes),
                Err(ProtoError::Oversized(_))
            ));
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_rejected() {
        let mut bad = Frame::Poll.encode();
        bad[4] = 0xff; // kind := 0x00ff
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::UnknownKind(255))
        ));

        let mut trailing = Frame::Heartbeat { seq: 1 }.encode();
        trailing.push(0);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(ProtoError::TrailingBytes(1))
        ));

        // Inner trailing bytes: length header admits one more byte than
        // the message consumes.
        let mut inner = Frame::Poll.encode();
        inner.push(7);
        let len = (inner.len() - 4) as u32;
        inner[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&inner),
            Err(ProtoError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_utf8_in_string_field_rejected() {
        let f = Frame::Hello {
            proto: 1,
            name: "ab".into(),
            workers: 1,
            generation: 0,
        };
        let mut bytes = f.encode();
        // name bytes start after len(4) + kind(2) + proto(2) + strlen(2).
        bytes[10] = 0xff;
        bytes[11] = 0xfe;
        assert!(matches!(Frame::decode(&bytes), Err(ProtoError::BadUtf8)));
    }

    #[test]
    fn errors_display() {
        let e = ProtoError::Oversized(99);
        assert!(e.to_string().contains("99"));
        assert!(ProtoError::Truncated.to_string().contains("truncated"));
        assert!(ProtoError::UnknownKind(7).to_string().contains('7'));
        assert!(ProtoError::TrailingBytes(3).to_string().contains('3'));
        assert!(ProtoError::BadUtf8.to_string().contains("UTF-8"));
        let io = ProtoError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("io"));
    }
}
