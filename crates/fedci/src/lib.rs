#![warn(missing_docs)]

//! `fedci` — a federated cyberinfrastructure substrate.
//!
//! The UniFaaS paper evaluates on four real HPC clusters federated through
//! the funcX cloud service. This crate rebuilds that substrate so the
//! framework above it can run anywhere:
//!
//! * [`hardware`] — cluster hardware descriptions with presets for the
//!   paper's testbed (Table II: Taiyi, Qiming, Dept. cluster, Lab cluster,
//!   Workstation);
//! * [`endpoint`] — a funcX-style endpoint state machine: an elastic pool of
//!   single-task workers fed by a local queue, with batch-scheduler
//!   provisioning delays on scale-out and idle-timeout scale-in;
//! * [`network`] — wide-area topology: per-pair bandwidth and latency with
//!   concurrency-limited bandwidth sharing;
//! * [`transfer`] — transfer mechanisms (Globus-like and rsync-like) with
//!   distinct startup costs, throughput efficiencies and concurrency limits;
//! * [`storage`] — per-endpoint data stores that cache staged files (a file
//!   staged to a cluster's shared filesystem is visible to every worker
//!   there);
//! * [`faas`] — the cloud service model: dispatch latency, result-polling
//!   cadence, payload limits and batching parameters;
//! * [`fault`] — deterministic fault injection (transfer failures, task
//!   crashes, endpoint outages);
//! * [`threaded`] — a real-threads execution fabric (crossbeam worker
//!   pools) used by the live runtime and the examples;
//! * [`fabric`] — the live-fabric abstraction ([`fabric::Fabric`]) shared
//!   by the threaded pools and the process backend, with the
//!   [`fabric::FabricTiming`] heartbeat/poll configuration;
//! * [`proto`] — the length-prefixed wire codec the process fabric speaks
//!   (HELLO/DISPATCH/RESULT/POLL/TRANSFER/HEARTBEAT/DRAIN);
//! * [`process`] — process-isolated endpoint daemons over TCP: spawn,
//!   heartbeat, reconnect with seeded backoff, survive `kill -9`;
//! * [`trace`] — the substrate's trace-event taxonomy (queue/execute
//!   spans, transfer and fault instants) for the `simkit::trace` sink.

pub mod clock;
pub mod endpoint;
pub mod faas;
pub mod fabric;
pub mod fault;
pub mod hardware;
pub mod network;
pub mod process;
pub mod proto;
pub mod storage;
pub mod threaded;
pub mod trace;
pub mod transfer;

pub use endpoint::{EndpointId, EndpointSim};
pub use faas::FaasServiceModel;
pub use fault::FaultInjector;
pub use hardware::ClusterSpec;
pub use network::NetworkTopology;
pub use storage::DataStore;
pub use transfer::{TransferMechanism, TransferParams};
