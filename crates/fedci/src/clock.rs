//! NTP-style clock alignment between the supervisor and a daemon.
//!
//! Every heartbeat is a clock probe: the client stamps `t0` (its own
//! monotonic micros) into HEARTBEAT, the daemon stamps `t1 ≈ t2` (its
//! monotonic micros — turnaround inside the daemon is sub-millisecond,
//! so one stamp stands for both) into HEARTBEAT_ACK along with the `t0`
//! echo, and the client stamps `t3` on arrival. The classic estimate:
//!
//! ```text
//! offset = t_daemon − (t0 + t3) / 2        rtt = t3 − t0
//! ```
//!
//! with the guarantee that the true offset lies within `± rtt / 2` of the
//! estimate regardless of how asymmetrically the path delays were split.
//! [`ClockSync`] keeps a sliding window of samples and reports the
//! offset of the **minimum-RTT** sample — the one with the tightest
//! bound — as the estimate, and `min_rtt / 2` as the stated uncertainty.
//!
//! Offsets are per daemon *incarnation*: a respawned daemon restarts its
//! monotonic clock at zero, so the supervisor keeps one `ClockSync` per
//! spawn generation and discards samples across a generation change.

use std::collections::VecDeque;

/// One heartbeat round-trip's worth of clock evidence. All fields are
/// monotonic micros — `t0_us`/`t3_us` on the client clock, `t_daemon_us`
/// on the daemon clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockSample {
    /// Client clock when the HEARTBEAT left.
    pub t0_us: u64,
    /// Daemon clock when the probe was handled.
    pub t_daemon_us: u64,
    /// Client clock when the HEARTBEAT_ACK arrived.
    pub t3_us: u64,
}

impl ClockSample {
    /// Round-trip time of this probe.
    pub fn rtt_us(&self) -> u64 {
        self.t3_us.saturating_sub(self.t0_us)
    }

    /// This sample's offset estimate: `t_daemon − midpoint(t0, t3)`.
    pub fn offset_us(&self) -> i64 {
        let midpoint = (self.t0_us / 2).wrapping_add(self.t3_us / 2) as i64;
        self.t_daemon_us as i64 - midpoint
    }
}

/// A daemon-to-client clock mapping with stated uncertainty:
/// `client_us ≈ daemon_us − offset_us`, true to within
/// `± uncertainty_us`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Daemon-clock minus client-clock, from the minimum-RTT sample.
    pub offset_us: i64,
    /// Half the minimum observed RTT — the NTP error bound.
    pub uncertainty_us: u64,
    /// The minimum RTT across the current window.
    pub min_rtt_us: u64,
    /// Samples currently in the window.
    pub samples: usize,
}

impl ClockEstimate {
    /// Maps a daemon timestamp onto the client timeline (may be negative
    /// if the daemon's clock started before the client's epoch — callers
    /// typically clamp at zero for rendering).
    pub fn to_client_us(&self, daemon_us: u64) -> i64 {
        daemon_us as i64 - self.offset_us
    }
}

/// Minimum-RTT sliding-window offset estimator.
#[derive(Clone, Debug)]
pub struct ClockSync {
    window: VecDeque<ClockSample>,
    cap: usize,
}

impl Default for ClockSync {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSync {
    /// Default sliding-window size. At the default 500 ms heartbeat this
    /// covers the last ~32 s; at the chaos-lab 25 ms cadence, ~1.6 s —
    /// short enough that drift within a window is negligible against the
    /// RTT bound, long enough to catch a quiet-network minimum.
    pub const DEFAULT_WINDOW: usize = 64;

    /// An estimator with the default window.
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW)
    }

    /// An estimator keeping the last `cap` samples (`cap >= 1`).
    pub fn with_window(cap: usize) -> Self {
        assert!(cap >= 1, "window must hold at least one sample");
        ClockSync {
            window: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Feeds one heartbeat round trip. Samples that violate causality on
    /// the client clock (`t3 < t0` — a stale echo from a previous
    /// connection) are discarded.
    pub fn observe(&mut self, sample: ClockSample) {
        if sample.t3_us < sample.t0_us {
            return;
        }
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(sample);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no sample has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The current estimate: offset of the minimum-RTT sample in the
    /// window (latest wins ties, so a drifting clock tracks forward),
    /// uncertainty `min_rtt / 2`. `None` until a sample arrives.
    pub fn estimate(&self) -> Option<ClockEstimate> {
        let best = self
            .window
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.rtt_us(), std::cmp::Reverse(*i)))?
            .1;
        Some(ClockEstimate {
            offset_us: best.offset_us(),
            uncertainty_us: best.rtt_us().div_ceil(2),
            min_rtt_us: best.rtt_us(),
            samples: self.window.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t0: u64, up: u64, down: u64, offset: i64) -> ClockSample {
        ClockSample {
            t0_us: t0,
            t_daemon_us: ((t0 + up) as i64 + offset) as u64,
            t3_us: t0 + up + down,
        }
    }

    #[test]
    fn symmetric_path_recovers_offset_exactly() {
        let mut cs = ClockSync::new();
        for i in 0..10 {
            cs.observe(sample(1_000 * i, 250, 250, 40_000));
        }
        let est = cs.estimate().unwrap();
        assert_eq!(est.offset_us, 40_000);
        assert_eq!(est.min_rtt_us, 500);
        assert_eq!(est.uncertainty_us, 250);
        assert_eq!(est.samples, 10);
        assert_eq!(est.to_client_us(40_500), 500);
    }

    #[test]
    fn minimum_rtt_sample_wins() {
        let mut cs = ClockSync::new();
        // Congested probes with wildly asymmetric delay...
        for i in 0..5 {
            cs.observe(sample(10_000 * i, 9_000, 100, -7_000));
        }
        // ...and one quiet, nearly-symmetric probe.
        cs.observe(sample(100_000, 120, 130, -7_000));
        let est = cs.estimate().unwrap();
        assert_eq!(est.min_rtt_us, 250);
        // Error is (up − down) / 2 = −5 µs, well inside rtt/2.
        assert!((est.offset_us - -7_000).abs() <= est.uncertainty_us as i64);
        assert!(est.uncertainty_us <= 125);
    }

    #[test]
    fn window_slides_and_ties_prefer_latest() {
        let mut cs = ClockSync::with_window(4);
        for i in 0..20u64 {
            // Same RTT every time, but the offset drifts upward.
            cs.observe(sample(1_000 * i, 200, 200, 1_000 + i as i64));
        }
        assert_eq!(cs.len(), 4);
        let est = cs.estimate().unwrap();
        // Latest of the equal-RTT samples: i == 19.
        assert_eq!(est.offset_us, 1_019);
    }

    #[test]
    fn stale_echo_discarded_and_empty_reports_none() {
        let mut cs = ClockSync::new();
        assert!(cs.estimate().is_none());
        assert!(cs.is_empty());
        cs.observe(ClockSample {
            t0_us: 5_000,
            t_daemon_us: 1,
            t3_us: 4_000, // arrived "before" it left: stale echo
        });
        assert!(cs.estimate().is_none());
    }

    #[test]
    fn negative_daemon_lead_maps_back_onto_client_timeline() {
        // Daemon clock started 1 s after the client epoch, so it reads
        // 1 s behind the client: offset is −1 s.
        let mut cs = ClockSync::new();
        cs.observe(ClockSample {
            t0_us: 2_000_000,
            t_daemon_us: 1_000_250,
            t3_us: 2_000_500,
        });
        let est = cs.estimate().unwrap();
        assert_eq!(est.offset_us, -1_000_000);
        // A daemon event at its local t=0 lands at client t=1 s.
        assert_eq!(est.to_client_us(0), 1_000_000);
    }
}
