//! Process-isolated endpoints over TCP — the fabric that survives
//! `kill -9`.
//!
//! Two halves:
//!
//! * **Daemon** ([`run_daemon`] / the `unifaas-endpointd` binary): one
//!   endpoint as its own OS process. It binds a listener, announces the
//!   bound address, and serves one client connection at a time with the
//!   [`crate::proto`] framing: blobs staged by TRANSFER, work arriving as
//!   DISPATCH, results flowing back as RESULT, liveness answered per
//!   HEARTBEAT. Results produced while the client is away are queued and
//!   **replayed on the next connection** — deliberately, because that is
//!   exactly the stale-RESULT case the client's attempt-generation guard
//!   must absorb.
//! * **Client** ([`ProcessFabric`]): one supervisor thread per endpoint
//!   owning the child process (spawn mode) or a remote address (connect
//!   mode), the connection, and the in-flight table. Heartbeats drive a
//!   missed-beat liveness verdict ([`FabricTiming::suspect_after`] /
//!   [`FabricTiming::down_after`]); a dead connection fails every
//!   outstanding attempt (the runtime above re-dispatches under a fresh
//!   attempt number), and reconnection runs seeded exponential backoff,
//!   respawning the child if it actually died.
//!
//! [`ChaosProxy`] sits between client and daemon for the nastier failure
//! modes: cut mid-frame after N bytes, stall one direction to fake a
//! half-open connection, or sever on command.

use crate::clock::{ClockEstimate, ClockSample, ClockSync};
use crate::fabric::{
    assemble_input, Completion, Fabric, FabricTiming, FnRegistry, JobSpec, ProbeState,
};
use crate::proto::{
    Frame, TelemetryEvent, PROTO_VERSION, TEL_CTR_CHAOS_DELAYS, TEL_CTR_CHAOS_SWALLOWED,
    TEL_CTR_DISPATCHES, TEL_CTR_RESULTS_ERR, TEL_CTR_RESULTS_OK, TEL_CTR_RING_DROPPED,
    TEL_MAX_EVENTS, TEL_STAGE_CHAOS_DELAY, TEL_STAGE_CHAOS_SWALLOW, TEL_STAGE_EXEC_BEGIN,
    TEL_STAGE_EXEC_END, TEL_STAGE_RECV, TEL_STAGE_SENT,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simkit::metrics::{CounterId, GaugeId, HistogramId, LogHistogram, MetricsRegistry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The line a daemon prints on stdout once its listener is bound:
/// `LISTENING <addr>`. The spawning supervisor parses it to learn the
/// ephemeral port.
pub const LISTENING_PREFIX: &str = "LISTENING ";

/// How long the daemon blocks reading a connection before treating the
/// client as gone. Any live client heartbeats far more often than this.
const DAEMON_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Default capacity of the daemon's telemetry ring: events beyond this
/// drop oldest-first (counted, reported via `TEL_CTR_RING_DROPPED`).
pub const DAEMON_TEL_RING_CAPACITY: usize = 1 << 16;

/// Client-side cap on buffered daemon telemetry events per endpoint.
const CLIENT_TEL_EVENT_CAP: usize = 1 << 18;

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// Daemon-side fault injection, for chaos tests that need the *endpoint*
/// to misbehave (as opposed to the connection, which [`ChaosProxy`]
/// covers).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonChaos {
    /// Silently drop every Nth dispatched job (0 = never): the worker
    /// takes it and no RESULT ever comes back.
    pub swallow_every: usize,
    /// Sleep this long before executing each job (straggler injection;
    /// also widens the window for a result to complete while the client
    /// is disconnected).
    pub delay_ms: u64,
    /// Send every RESULT twice — a hostile duplicate the client's
    /// attempt guard must drop.
    pub dup_results: bool,
}

/// Configuration for one endpoint daemon.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Endpoint name, echoed in HELLO.
    pub name: String,
    /// Worker thread count.
    pub workers: usize,
    /// Listen address, typically `127.0.0.1:0` (ephemeral port).
    pub listen: String,
    /// Spawn generation, echoed in HELLO (the supervisor increments it
    /// per respawn).
    pub generation: u64,
    /// Fault injection switches.
    pub chaos: DaemonChaos,
    /// Capacity of the telemetry trace ring (events). The ring only
    /// fills once a client subscribes with TELEMETRY_SUB.
    pub telemetry_ring: usize,
}

impl DaemonConfig {
    /// A daemon on an ephemeral localhost port, no chaos.
    pub fn new(name: &str, workers: usize) -> Self {
        DaemonConfig {
            name: name.to_string(),
            workers,
            listen: "127.0.0.1:0".to_string(),
            generation: 0,
            chaos: DaemonChaos::default(),
            telemetry_ring: DAEMON_TEL_RING_CAPACITY,
        }
    }
}

/// State shared between the daemon's accept loop, workers and writer.
struct DaemonShared {
    /// Frames awaiting write, in order. RESULTs that fail to write (or
    /// arrive while disconnected) survive here for replay; acks are
    /// connection-scoped and dropped on write failure.
    outbox: Mutex<VecDeque<Frame>>,
    outbox_cv: Condvar,
    /// Current client connection (write half); `None` while between
    /// clients. The writer thread consults this before every frame.
    conn: Mutex<Option<TcpStream>>,
    busy: AtomicU32,
    queued: AtomicU32,
    completed: AtomicU64,
    jobs_seen: AtomicU64,
    stop_writer: AtomicBool,
}

impl DaemonShared {
    fn push(&self, f: Frame) {
        self.outbox.lock().push_back(f);
        self.outbox_cv.notify_all();
    }
}

/// The daemon's observability plane: a compact bounded trace ring of
/// [`TelemetryEvent`]s stamped in local monotonic micros, cumulative
/// counters, and an execution-latency sketch. The ring and the sketch
/// only fill while a client is subscribed (`level > 0`); the counters
/// are a handful of always-on atomic increments per job. Nothing ships
/// unsolicited — batches leave only in response to subscribed-heartbeat
/// and DRAIN flushes.
struct DaemonTelemetry {
    /// Local monotonic epoch — all `t_us` stamps are micros since this.
    start: Instant,
    /// This incarnation's spawn generation, stamped into every batch.
    generation: u64,
    /// 0 = off; >0 mirrors `simkit::trace::TraceLevel` (set by
    /// TELEMETRY_SUB).
    level: AtomicU8,
    /// Next batch sequence number.
    seq: AtomicU64,
    ring: Mutex<TelRing>,
    dispatches: AtomicU64,
    results_ok: AtomicU64,
    results_err: AtomicU64,
    chaos_swallowed: AtomicU64,
    chaos_delays: AtomicU64,
    /// Execution latency (seconds) of completed attempts.
    exec_hist: Mutex<LogHistogram>,
}

struct TelRing {
    events: VecDeque<TelemetryEvent>,
    cap: usize,
    dropped: u64,
}

impl DaemonTelemetry {
    fn new(generation: u64, ring_cap: usize) -> Self {
        DaemonTelemetry {
            start: Instant::now(),
            generation,
            level: AtomicU8::new(0),
            seq: AtomicU64::new(0),
            ring: Mutex::new(TelRing {
                events: VecDeque::new(),
                cap: ring_cap.max(1),
                dropped: 0,
            }),
            dispatches: AtomicU64::new(0),
            results_ok: AtomicU64::new(0),
            results_err: AtomicU64::new(0),
            chaos_swallowed: AtomicU64::new(0),
            chaos_delays: AtomicU64::new(0),
            exec_hist: Mutex::new(LogHistogram::new()),
        }
    }

    /// Micros since daemon start — the daemon's local monotonic clock,
    /// also stamped into HEARTBEAT_ACK for the client's offset estimator.
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) != 0
    }

    /// Records one trace event (no-op while unsubscribed). The ring
    /// drops oldest-first under pressure and counts what it lost.
    fn event(&self, stage: u8, task: u64, attempt: u32, arg: u64) {
        if !self.enabled() {
            return;
        }
        let ev = TelemetryEvent {
            stage,
            t_us: self.now_us(),
            task,
            attempt,
            arg,
        };
        let mut ring = self.ring.lock();
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Drains the ring into TELEMETRY frames (possibly several, each at
    /// most [`TEL_MAX_EVENTS`] events). Counters and the latency sketch
    /// ride on the final frame as cumulative state; an empty ring still
    /// yields one frame so counter updates reach the client between
    /// events. Returns nothing while unsubscribed.
    fn flush_frames(&self) -> Vec<Frame> {
        if !self.enabled() {
            return Vec::new();
        }
        let (mut batches, dropped) = {
            let mut ring = self.ring.lock();
            let events: Vec<TelemetryEvent> = ring.events.drain(..).collect();
            let dropped = ring.dropped;
            let mut batches: Vec<Vec<TelemetryEvent>> = events
                .chunks(TEL_MAX_EVENTS)
                .map(<[TelemetryEvent]>::to_vec)
                .collect();
            if batches.is_empty() {
                batches.push(Vec::new());
            }
            (batches, dropped)
        };
        let counters = vec![
            (TEL_CTR_DISPATCHES, self.dispatches.load(Ordering::Relaxed)),
            (TEL_CTR_RESULTS_OK, self.results_ok.load(Ordering::Relaxed)),
            (
                TEL_CTR_RESULTS_ERR,
                self.results_err.load(Ordering::Relaxed),
            ),
            (
                TEL_CTR_CHAOS_SWALLOWED,
                self.chaos_swallowed.load(Ordering::Relaxed),
            ),
            (
                TEL_CTR_CHAOS_DELAYS,
                self.chaos_delays.load(Ordering::Relaxed),
            ),
            (TEL_CTR_RING_DROPPED, dropped),
        ];
        let exec_buckets = self.exec_hist.lock().bucket_counts();
        let last = batches.len() - 1;
        batches
            .drain(..)
            .enumerate()
            .map(|(i, events)| Frame::Telemetry {
                generation: self.generation,
                seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
                events,
                counters: if i == last {
                    counters.clone()
                } else {
                    Vec::new()
                },
                exec_buckets: if i == last {
                    exec_buckets.clone()
                } else {
                    Vec::new()
                },
            })
            .collect()
    }
}

/// Runs one endpoint daemon to completion: bind, announce via `on_ready`,
/// serve connections until a DRAIN arrives, finish queued work, flush
/// results, return. This is the entire body of `unifaas-endpointd`, kept
/// in the library so tests can run a daemon on a thread ([`spawn_daemon_thread`])
/// instead of a child process.
pub fn run_daemon<F: FnOnce(SocketAddr)>(cfg: DaemonConfig, on_ready: F) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    on_ready(addr);

    let registry = FnRegistry::builtins();
    let blobs: Arc<Mutex<HashMap<u64, Arc<Vec<u8>>>>> = Arc::new(Mutex::new(HashMap::new()));
    let tel = Arc::new(DaemonTelemetry::new(cfg.generation, cfg.telemetry_ring));
    let shared = Arc::new(DaemonShared {
        outbox: Mutex::new(VecDeque::new()),
        outbox_cv: Condvar::new(),
        conn: Mutex::new(None),
        busy: AtomicU32::new(0),
        queued: AtomicU32::new(0),
        completed: AtomicU64::new(0),
        jobs_seen: AtomicU64::new(0),
        stop_writer: AtomicBool::new(false),
    });

    let (job_tx, job_rx) = unbounded::<JobSpec>();
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let rx = job_rx.clone();
        let shared = Arc::clone(&shared);
        let blobs = Arc::clone(&blobs);
        let registry = registry.clone();
        let chaos = cfg.chaos;
        let tel = Arc::clone(&tel);
        workers.push(
            std::thread::Builder::new()
                .name(format!("{}-worker-{i}", cfg.name))
                .spawn(move || daemon_worker(&rx, &shared, &blobs, &registry, &chaos, &tel))
                .expect("spawn daemon worker"),
        );
    }

    let writer = {
        let shared = Arc::clone(&shared);
        let tel = Arc::clone(&tel);
        std::thread::Builder::new()
            .name(format!("{}-writer", cfg.name))
            .spawn(move || daemon_writer(&shared, &tel))
            .expect("spawn daemon writer")
    };

    // Accept loop: one client at a time, until DRAIN.
    let mut draining = false;
    while !draining {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(DAEMON_READ_TIMEOUT)).ok();
        stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
        // HELLO goes out first, before the writer can replay queued
        // results on this connection.
        let hello = Frame::Hello {
            proto: PROTO_VERSION,
            name: cfg.name.clone(),
            workers: cfg.workers as u32,
            generation: cfg.generation,
        };
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if hello.write_to(&mut write_half).is_err() {
            continue;
        }
        *shared.conn.lock() = Some(write_half);
        shared.outbox_cv.notify_all();

        draining = daemon_serve_connection(stream, &shared, &blobs, &job_tx, &tel);
        if !draining {
            // Connection lost; the write half stays queued-for-replay.
            *shared.conn.lock() = None;
        }
    }

    // Drain: no new work; finish the queue, flush results (the final
    // connection stays open until the outbox is empty), exit.
    drop(job_tx);
    for w in workers {
        let _ = w.join();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !shared.outbox.lock().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.stop_writer.store(true, Ordering::SeqCst);
    shared.outbox_cv.notify_all();
    let _ = writer.join();
    *shared.conn.lock() = None;
    Ok(())
}

/// Reads frames from one client connection until it breaks or DRAINs.
/// Returns `true` if the daemon should shut down (DRAIN received).
fn daemon_serve_connection(
    mut stream: TcpStream,
    shared: &DaemonShared,
    blobs: &Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    job_tx: &Sender<JobSpec>,
    tel: &DaemonTelemetry,
) -> bool {
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(f) => f,
            Err(_) => return false, // connection gone; back to accept
        };
        match frame {
            Frame::Dispatch {
                task,
                attempt,
                generation: _,
                function,
                deps,
                payload,
            } => {
                let depth = shared.queued.fetch_add(1, Ordering::SeqCst) + 1;
                tel.dispatches.fetch_add(1, Ordering::Relaxed);
                tel.event(TEL_STAGE_RECV, task, attempt, u64::from(depth));
                let _ = job_tx.send(JobSpec {
                    task,
                    attempt,
                    function: Arc::from(function.as_str()),
                    deps,
                    payload,
                });
            }
            Frame::Transfer { key, payload } => {
                let stored = payload.len() as u64;
                blobs.lock().insert(key, Arc::new(payload));
                shared.push(Frame::TransferAck { key, stored });
            }
            Frame::Heartbeat { seq, t_client_us } => {
                shared.push(Frame::HeartbeatAck {
                    seq,
                    busy: shared.busy.load(Ordering::SeqCst),
                    t_client_us,
                    t_daemon_us: tel.now_us(),
                });
                // Telemetry rides the heartbeat cadence: anything the
                // ring gathered since the last beat ships right behind
                // the ack (nothing while unsubscribed).
                for f in tel.flush_frames() {
                    shared.push(f);
                }
            }
            Frame::TelemetrySub { level } => {
                tel.level.store(level, Ordering::Relaxed);
            }
            Frame::Poll => {
                shared.push(Frame::PollAck {
                    busy: shared.busy.load(Ordering::SeqCst),
                    queued: shared.queued.load(Ordering::SeqCst),
                    completed: shared.completed.load(Ordering::SeqCst),
                });
            }
            Frame::Drain => {
                // Final telemetry flush goes out ahead of DRAIN_ACK so a
                // draining client ingests it before it stops listening.
                for f in tel.flush_frames() {
                    shared.push(f);
                }
                shared.push(Frame::DrainAck {
                    remaining: shared.queued.load(Ordering::SeqCst)
                        + shared.busy.load(Ordering::SeqCst),
                });
                return true;
            }
            // Client-bound frames arriving here are a protocol violation;
            // tolerate them rather than crash the endpoint.
            _ => {}
        }
    }
}

/// One daemon worker: pull a job, apply chaos, execute, queue the RESULT.
fn daemon_worker(
    rx: &Receiver<JobSpec>,
    shared: &DaemonShared,
    blobs: &Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    registry: &FnRegistry,
    chaos: &DaemonChaos,
    tel: &DaemonTelemetry,
) {
    while let Ok(job) = rx.recv() {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        let n = shared.jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if chaos.swallow_every > 0 && n.is_multiple_of(chaos.swallow_every as u64) {
            // Crashed mid-execution: no RESULT, ever. The explicit
            // instant lets the merged timeline show *where* the fault
            // landed instead of leaving an unexplained truncated attempt.
            tel.chaos_swallowed.fetch_add(1, Ordering::Relaxed);
            tel.event(TEL_STAGE_CHAOS_SWALLOW, job.task, job.attempt, 0);
            continue;
        }
        if chaos.delay_ms > 0 {
            tel.chaos_delays.fetch_add(1, Ordering::Relaxed);
            tel.event(TEL_STAGE_CHAOS_DELAY, job.task, job.attempt, chaos.delay_ms);
            std::thread::sleep(Duration::from_millis(chaos.delay_ms));
        }
        shared.busy.fetch_add(1, Ordering::SeqCst);
        tel.event(TEL_STAGE_EXEC_BEGIN, job.task, job.attempt, 0);
        let exec_start = Instant::now();
        let outcome = match registry.get(&job.function) {
            None => Err(format!("unknown function `{}`", job.function)),
            Some(f) => assemble_input(&blobs.lock(), &job).and_then(|input| f(&input)),
        };
        let ok = outcome.is_ok();
        tel.event(TEL_STAGE_EXEC_END, job.task, job.attempt, u64::from(ok));
        if tel.enabled() {
            tel.exec_hist
                .lock()
                .observe(exec_start.elapsed().as_secs_f64());
        }
        if ok {
            tel.results_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            tel.results_err.fetch_add(1, Ordering::Relaxed);
        }
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        shared.completed.fetch_add(1, Ordering::SeqCst);
        let result = Frame::Result {
            task: job.task,
            attempt: job.attempt,
            generation: tel.generation,
            ok,
            payload: match outcome {
                Ok(bytes) => bytes,
                Err(msg) => msg.into_bytes(),
            },
        };
        if chaos.dup_results {
            shared.push(result.clone());
        }
        shared.push(result);
    }
}

/// The daemon's single writer: drains the outbox onto whatever connection
/// is current. RESULTs that cannot be written survive for the next
/// connection; acks do not (they are meaningless to a future client).
fn daemon_writer(shared: &DaemonShared, tel: &DaemonTelemetry) {
    loop {
        let frame = {
            let mut q = shared.outbox.lock();
            loop {
                if shared.stop_writer.load(Ordering::SeqCst) {
                    return;
                }
                if !q.is_empty() && shared.conn.lock().is_some() {
                    break q.pop_front().expect("non-empty");
                }
                shared.outbox_cv.wait_for(&mut q, Duration::from_millis(50));
            }
        };
        let result_ids = match &frame {
            Frame::Result {
                task, attempt, ok, ..
            } => Some((*task, *attempt, *ok)),
            _ => None,
        };
        let stream = shared.conn.lock().as_ref().and_then(|s| s.try_clone().ok());
        let wrote = match stream {
            Some(mut s) => frame.write_to(&mut s).is_ok(),
            None => false,
        };
        if wrote {
            // The span's last daemon-side stamp: the RESULT actually hit
            // the wire (replays after a reconnect re-stamp, which is the
            // truth — the first copy never arrived).
            if let Some((task, attempt, ok)) = result_ids {
                tel.event(TEL_STAGE_SENT, task, attempt, u64::from(ok));
            }
        }
        if !wrote {
            // Connection raced away mid-write. Results are precious —
            // requeue them at the front so replay preserves order.
            if matches!(frame, Frame::Result { .. }) {
                shared.outbox.lock().push_front(frame);
            }
            *shared.conn.lock() = None;
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Handle to a daemon running on a thread in this process (connect-mode
/// tests; production daemons are child processes).
pub struct DaemonHandle {
    addr: SocketAddr,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (it exits after a DRAIN).
    pub fn join(mut self) -> std::io::Result<()> {
        match self.join.take() {
            Some(j) => j
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("daemon thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        // Detach: a daemon that was never drained would block a join
        // forever on accept(). Tests that care call `join()` explicitly.
        drop(self.join.take());
    }
}

/// Runs [`run_daemon`] on a thread and returns once the listener is bound.
pub fn spawn_daemon_thread(cfg: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let (tx, rx) = std::sync::mpsc::channel();
    let name = cfg.name.clone();
    let join = std::thread::Builder::new()
        .name(format!("{name}-daemon"))
        .spawn(move || {
            run_daemon(cfg, |addr| {
                let _ = tx.send(addr);
            })
        })?;
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(addr) => Ok(DaemonHandle {
            addr,
            join: Some(join),
        }),
        Err(_) => Err(std::io::Error::other("daemon failed to bind")),
    }
}

// ---------------------------------------------------------------------------
// Client: ProcessFabric
// ---------------------------------------------------------------------------

/// How the fabric reaches one endpoint.
#[derive(Clone, Debug)]
pub enum EndpointMode {
    /// Spawn `command` as a child process (argv prefix; the fabric
    /// appends `--name/--workers/--listen/--generation`), parse the
    /// `LISTENING` line, connect. The supervisor respawns it — with an
    /// incremented generation — if it dies.
    Spawn {
        /// Program and leading arguments (e.g. the `unifaas-endpointd`
        /// path plus chaos flags).
        command: Vec<String>,
    },
    /// Connect to an already-running daemon (or a [`ChaosProxy`] in
    /// front of one).
    Connect {
        /// `host:port` of the daemon.
        addr: String,
    },
}

/// One endpoint's identity and reachability.
#[derive(Clone, Debug)]
pub struct ProcessEndpointSpec {
    /// Endpoint name (also the spawned daemon's `--name`).
    pub name: String,
    /// Worker count (also the spawned daemon's `--workers`; in connect
    /// mode this is the placement-capacity assumption until HELLO says
    /// otherwise).
    pub workers: usize,
    /// Spawn or connect.
    pub mode: EndpointMode,
}

/// Fabric-wide knobs.
#[derive(Clone, Debug)]
pub struct ProcessFabricConfig {
    /// Heartbeat/liveness/backoff intervals (validated at construction).
    pub timing: FabricTiming,
    /// Seed for the per-endpoint backoff-jitter RNG streams.
    pub seed: u64,
    /// Whether a dead spawned child is respawned (generation + 1). With
    /// this off a killed endpoint stays dead — useful for asserting
    /// permanent-loss behaviour.
    pub respawn: bool,
    /// Subscribe to daemon telemetry (TELEMETRY_SUB after every HELLO)
    /// and buffer the returned trace batches for
    /// [`ProcessFabric::telemetry`]. Off by default: a telemetry-off run
    /// exchanges no TELEMETRY frames at all and its results are
    /// bit-identical to pre-observability builds.
    pub telemetry: bool,
}

impl Default for ProcessFabricConfig {
    fn default() -> Self {
        ProcessFabricConfig {
            timing: FabricTiming::default(),
            seed: 1,
            respawn: true,
            telemetry: false,
        }
    }
}

/// Monotone per-endpoint robustness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessCounters {
    /// Successful connections established (first connect included).
    pub connects: u64,
    /// Child processes spawned beyond the first (i.e. respawns).
    pub respawns: u64,
    /// Outstanding attempts failed over because their connection died.
    pub failovers: u64,
    /// RESULT frames dropped because no matching (task, attempt) was
    /// outstanding — replays from resurrected endpoints, duplicates.
    pub stale_results: u64,
}

/// Per-endpoint state shared between the supervisor thread and the
/// fabric's public accessors.
struct EpShared {
    probe: AtomicU8, // 0 = Alive, 1 = Suspect, 2 = Dead
    busy: AtomicU32,
    workers: AtomicU32,
    generation: AtomicU64,
    connects: AtomicU64,
    respawns: AtomicU64,
    failovers: AtomicU64,
    stale_results: AtomicU64,
    // Wire-level observability: frame/byte counters for both directions
    // plus telemetry ingest stats, all cheap relaxed atomics.
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    tel_frames: AtomicU64,
    tel_events: AtomicU64,
    /// Heartbeat round-trip times, seconds.
    rtt_hist: Mutex<LogHistogram>,
    /// DISPATCH-write to RESULT-arrival latency, seconds.
    dispatch_hist: Mutex<LogHistogram>,
    /// Buffered daemon telemetry and clock evidence.
    telemetry: Mutex<TelemetryStore>,
}

impl EpShared {
    fn new(workers: usize) -> Self {
        EpShared {
            probe: AtomicU8::new(2),
            busy: AtomicU32::new(0),
            workers: AtomicU32::new(workers as u32),
            generation: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            stale_results: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_recv: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_recv: AtomicU64::new(0),
            tel_frames: AtomicU64::new(0),
            tel_events: AtomicU64::new(0),
            rtt_hist: Mutex::new(LogHistogram::new()),
            dispatch_hist: Mutex::new(LogHistogram::new()),
            telemetry: Mutex::new(TelemetryStore::new()),
        }
    }

    fn set_probe(&self, p: ProbeState) {
        self.probe.store(
            match p {
                ProbeState::Alive => 0,
                ProbeState::Suspect => 1,
                ProbeState::Dead => 2,
            },
            Ordering::SeqCst,
        );
    }

    fn get_probe(&self) -> ProbeState {
        match self.probe.load(Ordering::SeqCst) {
            0 => ProbeState::Alive,
            1 => ProbeState::Suspect,
            _ => ProbeState::Dead,
        }
    }
}

/// Client-side accumulation of one endpoint daemon's telemetry. Keyed by
/// spawn generation throughout: a respawned daemon restarts its monotonic
/// clock, so events, counters, sketches, and clock evidence from
/// different incarnations must never be conflated.
struct TelemetryStore {
    /// Buffered trace events, tagged with the generation whose daemon
    /// clock stamped them.
    events: Vec<(u64, TelemetryEvent)>,
    /// Highest batch sequence ingested per generation.
    last_seq: HashMap<u64, u64>,
    /// Latest cumulative counters per generation (code → value).
    gen_counters: HashMap<u64, Vec<(u16, u64)>>,
    /// Latest cumulative exec-latency bucket counts per generation.
    gen_buckets: HashMap<u64, Vec<(i32, u64)>>,
    /// Heartbeat clock evidence per generation.
    clocks: HashMap<u64, ClockSync>,
    /// Batches refused: stale generation or non-advancing sequence.
    dropped_batches: u64,
    /// Events discarded once [`CLIENT_TEL_EVENT_CAP`] was reached.
    dropped_events: u64,
}

impl TelemetryStore {
    fn new() -> Self {
        TelemetryStore {
            events: Vec::new(),
            last_seq: HashMap::new(),
            gen_counters: HashMap::new(),
            gen_buckets: HashMap::new(),
            clocks: HashMap::new(),
            dropped_batches: 0,
            dropped_events: 0,
        }
    }

    /// Ingests one TELEMETRY batch. A batch from any generation other
    /// than the connection's current one, or whose sequence fails to
    /// advance past everything already ingested for that generation, is
    /// dropped whole — merging it would put events on the wrong clock or
    /// regress cumulative counters. Returns whether the batch was kept.
    fn ingest(
        &mut self,
        current_gen: u64,
        generation: u64,
        seq: u64,
        events: Vec<TelemetryEvent>,
        counters: Vec<(u16, u64)>,
        exec_buckets: Vec<(i32, u64)>,
    ) -> bool {
        if generation != current_gen {
            self.dropped_batches += 1;
            return false;
        }
        let last = self.last_seq.entry(generation).or_insert(0);
        if seq <= *last {
            self.dropped_batches += 1;
            return false;
        }
        *last = seq;
        for ev in events {
            if self.events.len() >= CLIENT_TEL_EVENT_CAP {
                self.dropped_events += 1;
            } else {
                self.events.push((generation, ev));
            }
        }
        // Counters and the sketch are cumulative-since-daemon-start, so
        // the newest batch supersedes whatever we held (and a batch that
        // carries neither leaves the last full snapshot in place).
        if !counters.is_empty() {
            self.gen_counters.insert(generation, counters);
        }
        if !exec_buckets.is_empty() {
            self.gen_buckets.insert(generation, exec_buckets);
        }
        true
    }
}

/// Wraps the reader half of a supervisor connection to count inbound
/// bytes at the socket, including frames that later fail to decode.
struct CountingReader {
    inner: TcpStream,
    bytes: Arc<EpShared>,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// Everything the supervisor thread reacts to, merged into one channel so
/// a single `recv_timeout` drives commands, inbound frames, and timer
/// deadlines alike.
enum Ev {
    Stage(u64, Arc<Vec<u8>>),
    Submit(JobSpec, Completion),
    /// A frame from the reader of connection-epoch `.0`.
    Frame(u64, Frame),
    /// The reader of connection-epoch `.0` hit EOF/error.
    ReaderClosed(u64),
    /// SIGKILL the child (chaos hook).
    Kill,
    Shutdown,
}

/// One live connection as the supervisor sees it.
struct Conn {
    stream: TcpStream,
    epoch: u64,
    staged: HashSet<u64>,
    hb_last_sent: Instant,
    last_ack: Instant,
}

/// One in-flight attempt: its completion plus the instant its DISPATCH
/// hit the wire (for the dispatch-roundtrip histogram).
struct Pending {
    done: Completion,
    sent_at: Instant,
}

/// The supervisor for one endpoint.
struct Supervisor {
    spec: ProcessEndpointSpec,
    timing: FabricTiming,
    respawn: bool,
    telemetry: bool,
    /// The fabric-wide client clock epoch; all `t_client_us` stamps are
    /// micros since this, so every endpoint shares one client timeline.
    clock0: Instant,
    shared: Arc<EpShared>,
    rx: Receiver<Ev>,
    self_tx: Sender<Ev>,
    rng: StdRng,
    child: Option<Child>,
    child_addr: Option<SocketAddr>,
    spawned_once: bool,
    conn: Option<Conn>,
    epoch: u64,
    hb_seq: u64,
    backoff_exp: u32,
    next_connect: Instant,
    gave_up: bool,
    outstanding: HashMap<(u64, u32), Pending>,
    blob_cache: HashMap<u64, Arc<Vec<u8>>>,
}

impl Supervisor {
    /// Micros on the shared client clock.
    fn now_us(&self) -> u64 {
        self.clock0.elapsed().as_micros() as u64
    }

    /// Writes one frame on the current connection, counting wire frames
    /// and bytes. Returns `false` on failure or while disconnected
    /// without touching connection state — callers decide whether a
    /// failed write kills the connection.
    fn write_frame(&self, frame: &Frame) -> bool {
        let Some(c) = &self.conn else { return false };
        let bytes = frame.encode();
        if (&c.stream).write_all(&bytes).is_ok() {
            self.shared.frames_sent.fetch_add(1, Ordering::Relaxed);
            self.shared
                .bytes_sent
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn run(mut self) {
        loop {
            let now = Instant::now();
            if self.conn.is_none() && !self.gave_up && now >= self.next_connect {
                self.try_connect();
            }
            let hb_due = self.conn.as_ref().is_some_and(|c| {
                now.duration_since(c.hb_last_sent) >= self.timing.heartbeat_interval
            });
            if hb_due {
                self.hb_seq += 1;
                // Every heartbeat is also a clock probe: the daemon
                // echoes t_client_us back with its own stamp.
                let hb = Frame::Heartbeat {
                    seq: self.hb_seq,
                    t_client_us: self.now_us(),
                };
                if let Some(c) = &mut self.conn {
                    c.hb_last_sent = now;
                }
                if !self.write_frame(&hb) {
                    self.conn_lost("heartbeat write failed");
                }
            }
            if let Some(c) = &self.conn {
                let silent = now.duration_since(c.last_ack);
                if silent >= self.timing.down_after {
                    self.conn_lost("liveness timeout");
                } else if silent >= self.timing.suspect_after {
                    self.shared.set_probe(ProbeState::Suspect);
                }
            }
            let wait = self
                .next_deadline()
                .saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(Ev::Shutdown) => return self.shutdown(),
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return self.shutdown(),
            }
        }
    }

    /// The earliest instant at which time-driven work (heartbeat,
    /// liveness verdict, reconnect attempt) is due.
    fn next_deadline(&self) -> Instant {
        match &self.conn {
            Some(c) => {
                let hb = c.hb_last_sent + self.timing.heartbeat_interval;
                let suspect = c.last_ack + self.timing.suspect_after;
                let down = c.last_ack + self.timing.down_after;
                hb.min(suspect).min(down)
            }
            None => {
                if self.gave_up {
                    Instant::now() + Duration::from_secs(3600)
                } else {
                    self.next_connect
                }
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Stage(key, bytes) => {
                self.blob_cache.insert(key, Arc::clone(&bytes));
                self.stage_to_conn(key);
            }
            Ev::Submit(job, done) => self.submit(job, done),
            Ev::Frame(epoch, frame) => self.on_frame(epoch, frame),
            Ev::ReaderClosed(epoch) => {
                if self.conn.as_ref().is_some_and(|c| c.epoch == epoch) {
                    self.conn_lost("connection closed");
                }
            }
            Ev::Kill => self.kill_child(),
            Ev::Shutdown => unreachable!("handled in run()"),
        }
    }

    /// Ships blob `key` to the current connection unless it already has
    /// it this epoch.
    fn stage_to_conn(&mut self, key: u64) {
        let already = match &self.conn {
            None => return,
            Some(c) => c.staged.contains(&key),
        };
        if already {
            return;
        }
        let Some(bytes) = self.blob_cache.get(&key) else {
            return;
        };
        let frame = Frame::Transfer {
            key,
            payload: bytes.as_ref().clone(),
        };
        if self.write_frame(&frame) {
            if let Some(c) = &mut self.conn {
                c.staged.insert(key);
            }
        } else {
            self.conn_lost("transfer write failed");
        }
    }

    fn submit(&mut self, job: JobSpec, done: Completion) {
        if self.conn.is_none() {
            done(Err(format!("endpoint {} not connected", self.spec.name)));
            return;
        }
        // Re-stage any dep this connection epoch hasn't seen (a restarted
        // daemon lost its blob store; a reconnect cleared `staged`).
        for d in job.deps.clone() {
            if !self.blob_cache.contains_key(&d) {
                done(Err(format!(
                    "dep blob {d} for task {} never staged",
                    job.task
                )));
                return;
            }
            self.stage_to_conn(d);
            if self.conn.is_none() {
                done(Err(format!("endpoint {} not connected", self.spec.name)));
                return;
            }
        }
        let frame = Frame::Dispatch {
            task: job.task,
            attempt: job.attempt,
            // Span context: the daemon generation this dispatch believes
            // it is talking to (a respawned daemon will answer with its
            // own, newer generation on the RESULT).
            generation: self.shared.generation.load(Ordering::SeqCst),
            function: job.function.to_string(),
            deps: job.deps.clone(),
            payload: job.payload.clone(),
        };
        if !self.write_frame(&frame) {
            self.conn_lost("dispatch write failed");
            done(Err(format!(
                "endpoint {} dispatch write failed",
                self.spec.name
            )));
            return;
        }
        self.outstanding.insert(
            (job.task, job.attempt),
            Pending {
                done,
                sent_at: Instant::now(),
            },
        );
    }

    fn on_frame(&mut self, epoch: u64, frame: Frame) {
        if self.conn.as_ref().is_none_or(|c| c.epoch != epoch) {
            return; // a stale reader's leftovers
        }
        // Any frame is proof of life.
        if let Some(c) = &mut self.conn {
            c.last_ack = Instant::now();
        }
        match frame {
            Frame::Hello {
                proto,
                workers,
                generation,
                ..
            } => {
                if proto != PROTO_VERSION {
                    self.conn_lost("protocol version mismatch");
                    return;
                }
                self.shared.workers.store(workers, Ordering::SeqCst);
                self.shared.generation.store(generation, Ordering::SeqCst);
                self.shared.set_probe(ProbeState::Alive);
            }
            Frame::HeartbeatAck {
                busy,
                t_client_us,
                t_daemon_us,
                ..
            } => {
                self.shared.busy.store(busy, Ordering::SeqCst);
                self.shared.set_probe(ProbeState::Alive);
                let sample = ClockSample {
                    t0_us: t_client_us,
                    t_daemon_us,
                    t3_us: self.now_us(),
                };
                if sample.t3_us >= sample.t0_us {
                    self.shared
                        .rtt_hist
                        .lock()
                        .observe(sample.rtt_us() as f64 / 1e6);
                    let generation = self.shared.generation.load(Ordering::SeqCst);
                    self.shared
                        .telemetry
                        .lock()
                        .clocks
                        .entry(generation)
                        .or_default()
                        .observe(sample);
                }
            }
            Frame::PollAck { busy, .. } => {
                self.shared.busy.store(busy, Ordering::SeqCst);
            }
            Frame::Result {
                task,
                attempt,
                generation: _,
                ok,
                payload,
            } => match self.outstanding.remove(&(task, attempt)) {
                Some(p) => {
                    self.shared
                        .dispatch_hist
                        .lock()
                        .observe(p.sent_at.elapsed().as_secs_f64());
                    (p.done)(if ok {
                        Ok(payload)
                    } else {
                        Err(String::from_utf8_lossy(&payload).into_owned())
                    });
                }
                None => {
                    // A replay from a resurrected connection, a
                    // duplicate, or an attempt we already failed over.
                    // Exactly-once resolution = drop it here.
                    self.shared.stale_results.fetch_add(1, Ordering::SeqCst);
                }
            },
            Frame::Telemetry {
                generation,
                seq,
                events,
                counters,
                exec_buckets,
            } => {
                let current = self.shared.generation.load(Ordering::SeqCst);
                let n_events = events.len() as u64;
                let kept = self.shared.telemetry.lock().ingest(
                    current,
                    generation,
                    seq,
                    events,
                    counters,
                    exec_buckets,
                );
                if kept {
                    self.shared.tel_frames.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .tel_events
                        .fetch_add(n_events, Ordering::Relaxed);
                }
            }
            Frame::TransferAck { .. } | Frame::DrainAck { .. } => {}
            _ => {}
        }
    }

    fn try_connect(&mut self) {
        let addr = match self.ensure_target() {
            Some(a) => a,
            None => {
                self.schedule_reconnect();
                return;
            }
        };
        match TcpStream::connect_timeout(&addr, self.timing.connect_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_write_timeout(Some(self.timing.down_after)).ok();
                self.epoch += 1;
                let epoch = self.epoch;
                if let Ok(read_half) = stream.try_clone() {
                    let tx = self.self_tx.clone();
                    let name = self.spec.name.clone();
                    let shared = Arc::clone(&self.shared);
                    std::thread::Builder::new()
                        .name(format!("{name}-reader-{epoch}"))
                        .spawn(move || {
                            let mut reader = CountingReader {
                                inner: read_half,
                                bytes: Arc::clone(&shared),
                            };
                            loop {
                                match Frame::read_from(&mut reader) {
                                    Ok(f) => {
                                        shared.frames_recv.fetch_add(1, Ordering::Relaxed);
                                        if tx.send(Ev::Frame(epoch, f)).is_err() {
                                            return;
                                        }
                                    }
                                    Err(_) => {
                                        let _ = tx.send(Ev::ReaderClosed(epoch));
                                        return;
                                    }
                                }
                            }
                        })
                        .expect("spawn reader");
                } else {
                    self.schedule_reconnect();
                    return;
                }
                let now = Instant::now();
                self.conn = Some(Conn {
                    stream,
                    epoch,
                    staged: HashSet::new(),
                    // Backdate so the first heartbeat goes out on the
                    // next loop iteration.
                    hb_last_sent: now - self.timing.heartbeat_interval,
                    last_ack: now,
                });
                self.backoff_exp = 0;
                self.shared.connects.fetch_add(1, Ordering::SeqCst);
                // Telemetry is strictly opt-in and per-connection: the
                // subscription is the first frame on every connection —
                // ahead of any dispatch, so the daemon's RECV stamps
                // cover even the first task, and re-sent on every
                // reconnect so a respawned daemon re-subscribes.
                if self.telemetry {
                    let _ = self.write_frame(&Frame::TelemetrySub { level: 2 });
                }
                // Probe flips to Alive when HELLO arrives.
            }
            Err(_) => self.schedule_reconnect(),
        }
    }

    /// Resolves the address to connect to, spawning/respawning the child
    /// if this endpoint owns one and it is not running.
    fn ensure_target(&mut self) -> Option<SocketAddr> {
        match self.spec.mode.clone() {
            EndpointMode::Connect { addr } => {
                addr.to_socket_addrs().ok().and_then(|mut a| a.next())
            }
            EndpointMode::Spawn { command } => {
                let child_dead = match &mut self.child {
                    None => true,
                    Some(ch) => ch.try_wait().map(|st| st.is_some()).unwrap_or(true),
                };
                if child_dead {
                    if self.spawned_once && !self.respawn {
                        self.gave_up = true;
                        return None;
                    }
                    let generation =
                        self.shared.respawns.load(Ordering::SeqCst) + u64::from(self.spawned_once);
                    match spawn_endpointd(&command, &self.spec, generation) {
                        Ok((child, addr)) => {
                            if self.spawned_once {
                                self.shared.respawns.fetch_add(1, Ordering::SeqCst);
                            }
                            self.spawned_once = true;
                            self.child = Some(child);
                            self.child_addr = Some(addr);
                        }
                        Err(_) => return None,
                    }
                }
                self.child_addr
            }
        }
    }

    /// Declares the connection dead: fail every outstanding attempt (the
    /// runtime re-dispatches under fresh attempt numbers), clear the
    /// staged set, and schedule reconnection.
    fn conn_lost(&mut self, reason: &str) {
        let Some(c) = self.conn.take() else { return };
        let _ = c.stream.shutdown(Shutdown::Both);
        self.shared.set_probe(ProbeState::Dead);
        let n = self.outstanding.len() as u64;
        if n > 0 {
            self.shared.failovers.fetch_add(n, Ordering::SeqCst);
        }
        for ((task, _attempt), p) in std::mem::take(&mut self.outstanding) {
            (p.done)(Err(format!(
                "endpoint {}: {reason} (task {task} in flight)",
                self.spec.name
            )));
        }
        // Retry promptly; if the peer is really gone the connect failure
        // path takes over with exponential backoff.
        self.next_connect = Instant::now();
    }

    /// Seeded exponential backoff with multiplicative jitter in
    /// [0.5, 1.5): deterministic per (fabric seed, endpoint), desynced
    /// across endpoints so a mass outage does not produce a reconnect
    /// stampede.
    fn schedule_reconnect(&mut self) {
        let base = self.timing.reconnect_base.as_secs_f64();
        let max = self.timing.reconnect_max.as_secs_f64();
        let exp = f64::from(self.backoff_exp.min(16));
        let jitter = 0.5 + self.rng.gen::<f64>();
        let delay = (base * exp.exp2() * jitter).min(max);
        self.backoff_exp = self.backoff_exp.saturating_add(1);
        self.next_connect = Instant::now() + Duration::from_secs_f64(delay);
    }

    /// SIGKILL the child — the chaos hook. `Child::kill` is SIGKILL on
    /// unix: no cleanup, no flush, the real crash.
    fn kill_child(&mut self) {
        if let Some(mut ch) = self.child.take() {
            let _ = ch.kill();
            let _ = ch.wait(); // reap
        }
    }

    fn shutdown(mut self) {
        if let Some(epoch) = self.conn.as_ref().map(|c| c.epoch) {
            if self.write_frame(&Frame::Drain) {
                // Give the daemon a moment to ack so it exits cleanly;
                // results that race in still resolve normally.
                let deadline = Instant::now() + Duration::from_millis(500);
                'wait: while Instant::now() < deadline {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(left.max(Duration::from_millis(1))) {
                        Ok(Ev::Frame(e, Frame::DrainAck { .. })) if e == epoch => break 'wait,
                        Ok(Ev::Frame(e, f)) => self.on_frame(e, f),
                        Ok(_) | Err(RecvTimeoutError::Timeout) => break 'wait,
                        Err(RecvTimeoutError::Disconnected) => break 'wait,
                    }
                }
            }
        }
        if let Some(c) = self.conn.take() {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        if let Some(mut ch) = self.child.take() {
            // Post-drain the daemon exits on its own; give it a beat,
            // then make sure.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match ch.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = ch.kill();
                        let _ = ch.wait();
                        break;
                    }
                }
            }
        }
        self.shared.set_probe(ProbeState::Dead);
        for (_, p) in std::mem::take(&mut self.outstanding) {
            (p.done)(Err("fabric shut down".to_string()));
        }
    }
}

/// Spawns `unifaas-endpointd` (or whatever `command` names) and parses
/// its `LISTENING <addr>` announcement.
fn spawn_endpointd(
    command: &[String],
    spec: &ProcessEndpointSpec,
    generation: u64,
) -> std::io::Result<(Child, SocketAddr)> {
    if command.is_empty() {
        return Err(std::io::Error::other("empty spawn command"));
    }
    let mut cmd = Command::new(&command[0]);
    cmd.args(&command[1..])
        .arg("--name")
        .arg(&spec.name)
        .arg("--workers")
        .arg(spec.workers.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--generation")
        .arg(generation.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("no child stdout"))?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other("daemon exited before announcing"));
        }
        if let Some(rest) = line.trim().strip_prefix(LISTENING_PREFIX) {
            match rest.parse::<SocketAddr>() {
                Ok(a) => break a,
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other("bad LISTENING line"));
                }
            }
        }
    };
    Ok((child, addr))
}

/// Metric handles for one process-fabric endpoint (see
/// [`ProcessFabric::register_metrics`]), with counter high-water marks
/// for monotone sampling — same shape as the threaded pool's.
pub struct ProcMetricIds {
    workers: GaugeId,
    busy: GaugeId,
    up: GaugeId,
    connects: CounterId,
    respawns: CounterId,
    failovers: CounterId,
    stale: CounterId,
    last: ProcessCounters,
    // Wire observability (`fedci_wire_*`).
    frames_sent: CounterId,
    frames_recv: CounterId,
    bytes_sent: CounterId,
    bytes_recv: CounterId,
    tel_frames: CounterId,
    tel_events: CounterId,
    tel_dropped: CounterId,
    hb_rtt: HistogramId,
    dispatch_rtt: HistogramId,
    clock_offset: GaugeId,
    clock_err: GaugeId,
    last_wire: WireLast,
}

/// Counter high-water marks for the wire series (delta sampling keeps
/// scrapes monotone, matching `ProcessCounters` handling).
#[derive(Clone, Copy, Debug, Default)]
struct WireLast {
    frames_sent: u64,
    frames_recv: u64,
    bytes_sent: u64,
    bytes_recv: u64,
    tel_frames: u64,
    tel_events: u64,
    tel_dropped: u64,
}

/// One endpoint's drained observability plane, ready for merging into a
/// cross-process timeline (`unifaas::obs`): daemon trace events and clock
/// estimates grouped by spawn generation, cumulative daemon counters
/// summed across generations, and the reconstituted execution-latency
/// sketch.
#[derive(Clone, Debug)]
pub struct EndpointTelemetry {
    /// Endpoint name.
    pub endpoint: String,
    /// Daemon trace events as `(generation, event)` — `t_us` is on that
    /// generation's daemon clock.
    pub events: Vec<(u64, TelemetryEvent)>,
    /// Clock mapping per generation (absent generations never completed
    /// a heartbeat round trip).
    pub clocks: Vec<(u64, ClockEstimate)>,
    /// Daemon-side counters summed across generations.
    pub counters: DaemonCounters,
    /// Execution latency (seconds) across generations, rebuilt from the
    /// shipped bucket counts.
    pub exec_hist: LogHistogram,
    /// Events the daemon's ring dropped before they could ship.
    pub ring_dropped: u64,
    /// Telemetry batches the client refused (stale generation or
    /// out-of-order sequence).
    pub dropped_batches: u64,
    /// Events the client discarded at its buffer cap.
    pub dropped_events: u64,
}

/// Cumulative daemon-side work counters (summed across generations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    /// DISPATCH frames accepted.
    pub dispatches: u64,
    /// Successful RESULTs produced.
    pub results_ok: u64,
    /// Failed RESULTs produced.
    pub results_err: u64,
    /// Jobs swallowed by chaos injection.
    pub chaos_swallowed: u64,
    /// Jobs straggler-delayed by chaos injection.
    pub chaos_delays: u64,
}

/// The process-isolated fabric: one supervisor thread per endpoint, child
/// daemons (or remote addresses) behind it, the [`Fabric`] trait in front.
pub struct ProcessFabric {
    labels: Vec<String>,
    shared: Vec<Arc<EpShared>>,
    txs: Vec<Sender<Ev>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
    clock0: Instant,
}

impl ProcessFabric {
    /// Starts one supervisor per endpoint. Spawn-mode children launch
    /// (and connect) asynchronously — use [`ProcessFabric::wait_probe`]
    /// to block until an endpoint is up.
    pub fn new(specs: Vec<ProcessEndpointSpec>, cfg: ProcessFabricConfig) -> Self {
        cfg.timing.validate().expect("invalid fabric timing");
        assert!(!specs.is_empty(), "need at least one endpoint");
        let clock0 = Instant::now();
        let mut labels = Vec::new();
        let mut shared = Vec::new();
        let mut txs = Vec::new();
        let mut joins = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Ev>();
            let ep_shared = Arc::new(EpShared::new(spec.workers));
            let sup = Supervisor {
                timing: cfg.timing,
                respawn: cfg.respawn,
                telemetry: cfg.telemetry,
                clock0,
                shared: Arc::clone(&ep_shared),
                rx,
                self_tx: tx.clone(),
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                child: None,
                child_addr: None,
                spawned_once: false,
                conn: None,
                epoch: 0,
                hb_seq: 0,
                backoff_exp: 0,
                next_connect: Instant::now(),
                gave_up: false,
                outstanding: HashMap::new(),
                blob_cache: HashMap::new(),
                spec: spec.clone(),
            };
            labels.push(spec.name.clone());
            shared.push(ep_shared);
            txs.push(tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("{}-supervisor", spec.name))
                    .spawn(move || sup.run())
                    .expect("spawn supervisor"),
            );
        }
        ProcessFabric {
            labels,
            shared,
            txs,
            joins: Mutex::new(joins),
            down: AtomicBool::new(false),
            clock0,
        }
    }

    /// Snapshots `ep`'s buffered daemon telemetry. Meaningful only when
    /// the fabric was built with [`ProcessFabricConfig::telemetry`] on;
    /// call after [`Fabric::shutdown`] to include the final DRAIN flush.
    pub fn telemetry(&self, ep: usize) -> EndpointTelemetry {
        let store = self.shared[ep].telemetry.lock();
        let mut events = store.events.clone();
        events.sort_by_key(|&(g, ev)| (g, ev.t_us));
        let mut clocks: Vec<(u64, ClockEstimate)> = store
            .clocks
            .iter()
            .filter_map(|(&g, cs)| cs.estimate().map(|e| (g, e)))
            .collect();
        clocks.sort_by_key(|&(g, _)| g);
        let mut counters = DaemonCounters::default();
        let mut ring_dropped = 0;
        for vals in store.gen_counters.values() {
            for &(code, v) in vals {
                match code {
                    TEL_CTR_DISPATCHES => counters.dispatches += v,
                    TEL_CTR_RESULTS_OK => counters.results_ok += v,
                    TEL_CTR_RESULTS_ERR => counters.results_err += v,
                    TEL_CTR_CHAOS_SWALLOWED => counters.chaos_swallowed += v,
                    TEL_CTR_CHAOS_DELAYS => counters.chaos_delays += v,
                    TEL_CTR_RING_DROPPED => ring_dropped += v,
                    _ => {}
                }
            }
        }
        let mut exec_hist = LogHistogram::new();
        let alpha = exec_hist.relative_error();
        for buckets in store.gen_buckets.values() {
            exec_hist.merge(&LogHistogram::from_bucket_counts(alpha, buckets));
        }
        EndpointTelemetry {
            endpoint: self.labels[ep].clone(),
            events,
            clocks,
            counters,
            exec_hist,
            ring_dropped,
            dropped_batches: store.dropped_batches,
            dropped_events: store.dropped_events,
        }
    }

    /// Blocks until `ep`'s probe reads `want`, up to `timeout`.
    pub fn wait_probe(&self, ep: usize, want: ProbeState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.shared[ep].get_probe() == want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared[ep].get_probe() == want
    }

    /// SIGKILLs `ep`'s child daemon (spawn mode only; a no-op otherwise).
    /// The supervisor notices via missed heartbeats / connection reset,
    /// fails over in-flight work, and respawns if configured to.
    pub fn kill(&self, ep: usize) {
        let _ = self.txs[ep].send(Ev::Kill);
    }

    /// Robustness counters for `ep`.
    pub fn counters(&self, ep: usize) -> ProcessCounters {
        let s = &self.shared[ep];
        ProcessCounters {
            connects: s.connects.load(Ordering::SeqCst),
            respawns: s.respawns.load(Ordering::SeqCst),
            failovers: s.failovers.load(Ordering::SeqCst),
            stale_results: s.stale_results.load(Ordering::SeqCst),
        }
    }

    /// The spawn generation `ep` last announced in HELLO.
    pub fn generation(&self, ep: usize) -> u64 {
        self.shared[ep].generation.load(Ordering::SeqCst)
    }

    /// Registers this fabric's per-endpoint gauge/counter families,
    /// mirroring the threaded pool's taxonomy (`fedci_proc_*`).
    pub fn register_metrics(&self, reg: &mut MetricsRegistry) -> Vec<ProcMetricIds> {
        self.labels
            .iter()
            .map(|name| {
                let l = &[("endpoint", name.as_str())];
                ProcMetricIds {
                    workers: reg.gauge("fedci_proc_workers", "Workers at the endpoint daemon.", l),
                    busy: reg.gauge(
                        "fedci_proc_busy_workers",
                        "Workers executing, per last heartbeat ack.",
                        l,
                    ),
                    up: reg.gauge(
                        "fedci_proc_up",
                        "1 while the endpoint connection is Alive.",
                        l,
                    ),
                    connects: reg.counter(
                        "fedci_proc_connects_total",
                        "Connections established to the endpoint.",
                        l,
                    ),
                    respawns: reg.counter(
                        "fedci_proc_respawns_total",
                        "Endpoint daemons respawned after dying.",
                        l,
                    ),
                    failovers: reg.counter(
                        "fedci_proc_failovers_total",
                        "In-flight attempts failed over on connection loss.",
                        l,
                    ),
                    stale: reg.counter(
                        "fedci_proc_stale_results_total",
                        "RESULT frames dropped by the attempt guard.",
                        l,
                    ),
                    last: ProcessCounters::default(),
                    frames_sent: reg.counter(
                        "fedci_wire_frames_sent_total",
                        "Frames written to the endpoint connection.",
                        l,
                    ),
                    frames_recv: reg.counter(
                        "fedci_wire_frames_received_total",
                        "Frames decoded off the endpoint connection.",
                        l,
                    ),
                    bytes_sent: reg.counter(
                        "fedci_wire_bytes_sent_total",
                        "Bytes written to the endpoint connection.",
                        l,
                    ),
                    bytes_recv: reg.counter(
                        "fedci_wire_bytes_received_total",
                        "Bytes read from the endpoint connection.",
                        l,
                    ),
                    tel_frames: reg.counter(
                        "fedci_wire_telemetry_frames_total",
                        "TELEMETRY batches ingested from the daemon.",
                        l,
                    ),
                    tel_events: reg.counter(
                        "fedci_wire_telemetry_events_total",
                        "Daemon trace events ingested.",
                        l,
                    ),
                    tel_dropped: reg.counter(
                        "fedci_wire_telemetry_dropped_total",
                        "TELEMETRY batches refused (stale generation or out-of-order sequence).",
                        l,
                    ),
                    hb_rtt: reg.histogram(
                        "fedci_wire_heartbeat_rtt_seconds",
                        "Heartbeat round-trip time.",
                        l,
                    ),
                    dispatch_rtt: reg.histogram(
                        "fedci_wire_dispatch_roundtrip_seconds",
                        "DISPATCH write to RESULT arrival.",
                        l,
                    ),
                    clock_offset: reg.gauge(
                        "fedci_wire_clock_offset_seconds",
                        "Estimated daemon-minus-client clock offset (current generation).",
                        l,
                    ),
                    clock_err: reg.gauge(
                        "fedci_wire_clock_uncertainty_seconds",
                        "NTP error bound on the clock offset (half the minimum heartbeat RTT).",
                        l,
                    ),
                    last_wire: WireLast::default(),
                }
            })
            .collect()
    }

    /// Samples every endpoint's atomics into `reg`; counters advance by
    /// delta so repeated scrapes stay monotone.
    pub fn sample_metrics(&self, reg: &mut MetricsRegistry, ids: &mut [ProcMetricIds]) {
        for (ep, id) in ids.iter_mut().enumerate() {
            let s = &self.shared[ep];
            reg.set(id.workers, f64::from(s.workers.load(Ordering::SeqCst)));
            reg.set(id.busy, f64::from(s.busy.load(Ordering::SeqCst)));
            reg.set(
                id.up,
                if s.get_probe() == ProbeState::Alive {
                    1.0
                } else {
                    0.0
                },
            );
            let now = self.counters(ep);
            reg.inc(id.connects, (now.connects - id.last.connects) as f64);
            reg.inc(id.respawns, (now.respawns - id.last.respawns) as f64);
            reg.inc(id.failovers, (now.failovers - id.last.failovers) as f64);
            reg.inc(id.stale, (now.stale_results - id.last.stale_results) as f64);
            id.last = now;

            let wire = WireLast {
                frames_sent: s.frames_sent.load(Ordering::Relaxed),
                frames_recv: s.frames_recv.load(Ordering::Relaxed),
                bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
                bytes_recv: s.bytes_recv.load(Ordering::Relaxed),
                tel_frames: s.tel_frames.load(Ordering::Relaxed),
                tel_events: s.tel_events.load(Ordering::Relaxed),
                tel_dropped: s.telemetry.lock().dropped_batches,
            };
            reg.inc(
                id.frames_sent,
                (wire.frames_sent - id.last_wire.frames_sent) as f64,
            );
            reg.inc(
                id.frames_recv,
                (wire.frames_recv - id.last_wire.frames_recv) as f64,
            );
            reg.inc(
                id.bytes_sent,
                (wire.bytes_sent - id.last_wire.bytes_sent) as f64,
            );
            reg.inc(
                id.bytes_recv,
                (wire.bytes_recv - id.last_wire.bytes_recv) as f64,
            );
            reg.inc(
                id.tel_frames,
                (wire.tel_frames - id.last_wire.tel_frames) as f64,
            );
            reg.inc(
                id.tel_events,
                (wire.tel_events - id.last_wire.tel_events) as f64,
            );
            reg.inc(
                id.tel_dropped,
                (wire.tel_dropped - id.last_wire.tel_dropped) as f64,
            );
            id.last_wire = wire;
            reg.replace_histogram(id.hb_rtt, s.rtt_hist.lock().clone());
            reg.replace_histogram(id.dispatch_rtt, s.dispatch_hist.lock().clone());
            // Clock gauges report the *current* generation's estimate.
            let generation = s.generation.load(Ordering::SeqCst);
            if let Some(est) = s
                .telemetry
                .lock()
                .clocks
                .get(&generation)
                .and_then(ClockSync::estimate)
            {
                reg.set(id.clock_offset, est.offset_us as f64 / 1e6);
                reg.set(id.clock_err, est.uncertainty_us as f64 / 1e6);
            }
        }
    }
}

impl Fabric for ProcessFabric {
    fn labels(&self) -> &[String] {
        &self.labels
    }

    fn clock_epoch(&self) -> Instant {
        self.clock0
    }

    fn n_workers(&self, ep: usize) -> usize {
        self.shared[ep].workers.load(Ordering::SeqCst) as usize
    }

    fn busy_workers(&self, ep: usize) -> usize {
        self.shared[ep].busy.load(Ordering::SeqCst) as usize
    }

    fn probe(&self, ep: usize) -> ProbeState {
        self.shared[ep].get_probe()
    }

    fn stage(&self, ep: usize, key: u64, bytes: &Arc<Vec<u8>>) {
        let _ = self.txs[ep].send(Ev::Stage(key, Arc::clone(bytes)));
    }

    fn submit(&self, ep: usize, job: JobSpec, done: Completion) {
        if let Err(e) = self.txs[ep].send(Ev::Submit(job, done)) {
            if let Ev::Submit(_, done) = e.0 {
                done(Err(format!("endpoint {} supervisor gone", self.labels[ep])));
            }
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.txs {
            let _ = tx.send(Ev::Shutdown);
        }
        for j in self.joins.lock().drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for ProcessFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// ChaosProxy
// ---------------------------------------------------------------------------

/// A fault-injecting TCP proxy between a [`ProcessFabric`] client and a
/// daemon: forwards byte streams until told to cut mid-frame
/// ([`ChaosProxy::cut_after_down_bytes`]), sever ([`ChaosProxy::cut_now`]),
/// or stall the daemon→client direction ([`ChaosProxy::set_stall_down`])
/// — the half-open connection where the peer is silent but the socket
/// never errors.
pub struct ChaosProxy {
    addr: SocketAddr,
    ctl: Arc<ProxyCtl>,
    join: Option<JoinHandle<()>>,
}

struct ProxyCtl {
    upstream: SocketAddr,
    /// Remaining daemon→client bytes before an abrupt cut; -1 = no cut
    /// armed. One-shot: disarms itself after firing.
    cut_down_budget: AtomicI64,
    stall_down: AtomicBool,
    closed: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral localhost port forwarding to
    /// `upstream`. Serves one client connection at a time (matching the
    /// daemon) and re-accepts after every cut, so reconnects flow
    /// through.
    pub fn start(upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let ctl = Arc::new(ProxyCtl {
            upstream,
            cut_down_budget: AtomicI64::new(-1),
            stall_down: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let ctl2 = Arc::clone(&ctl);
        let join = std::thread::Builder::new()
            .name("chaos-proxy".to_string())
            .spawn(move || proxy_accept_loop(&listener, &ctl2))?;
        Ok(ChaosProxy {
            addr,
            ctl,
            join: Some(join),
        })
    }

    /// The proxy's listen address (point the fabric's connect mode here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Severs the current connection immediately, both directions.
    pub fn cut_now(&self) {
        for s in self.ctl.conns.lock().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Arms a one-shot cut after `n` more daemon→client bytes — lands
    /// mid-frame for any frame longer than `n`.
    pub fn cut_after_down_bytes(&self, n: u64) {
        self.ctl
            .cut_down_budget
            .store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Stalls (or resumes) the daemon→client direction while leaving the
    /// sockets open: acks stop arriving, nothing errors — the client
    /// must conclude death from silence alone.
    pub fn set_stall_down(&self, stall: bool) {
        self.ctl.stall_down.store(stall, Ordering::SeqCst);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.ctl.closed.store(true, Ordering::SeqCst);
        self.cut_now();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn proxy_accept_loop(listener: &TcpListener, ctl: &Arc<ProxyCtl>) {
    while !ctl.closed.load(Ordering::SeqCst) {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => return,
        };
        let upstream = match TcpStream::connect_timeout(&ctl.upstream, Duration::from_secs(2)) {
            Ok(s) => s,
            Err(_) => continue,
        };
        client.set_nodelay(true).ok();
        upstream.set_nodelay(true).ok();
        // Short read timeouts let the pumps notice `closed` and cuts.
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        upstream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        {
            let mut conns = ctl.conns.lock();
            conns.clear();
            if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                conns.push(c);
                conns.push(u);
            }
        }
        let up = {
            let (mut src, mut dst) = match (client.try_clone(), upstream.try_clone()) {
                (Ok(s), Ok(d)) => (s, d),
                _ => continue,
            };
            let ctl = Arc::clone(ctl);
            std::thread::spawn(move || proxy_pump(&mut src, &mut dst, &ctl, false))
        };
        let down = {
            let (mut src, mut dst) = (upstream, client);
            let ctl = Arc::clone(ctl);
            std::thread::spawn(move || proxy_pump(&mut src, &mut dst, &ctl, true))
        };
        let _ = up.join();
        let _ = down.join();
        ctl.conns.lock().clear();
    }
}

/// Copies `src` → `dst` in small chunks, applying stall/cut controls when
/// pumping the daemon→client (`down`) direction.
fn proxy_pump(src: &mut TcpStream, dst: &mut TcpStream, ctl: &ProxyCtl, down: bool) {
    let mut buf = [0u8; 256];
    loop {
        if ctl.closed.load(Ordering::SeqCst) {
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        if down {
            while ctl.stall_down.load(Ordering::SeqCst) {
                if ctl.closed.load(Ordering::SeqCst) {
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let budget = ctl.cut_down_budget.load(Ordering::SeqCst);
            if budget >= 0 {
                let allow = (budget as usize).min(n);
                if allow > 0 && dst.write_all(&buf[..allow]).is_err() {
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                if n >= budget as usize {
                    // The cut: close both sides abruptly, disarm.
                    ctl.cut_down_budget.store(-1, Ordering::SeqCst);
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                ctl.cut_down_budget
                    .store(budget - n as i64, Ordering::SeqCst);
                continue;
            }
        }
        if dst.write_all(&buf[..n]).is_err() {
            let _ = src.shutdown(Shutdown::Both);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn fast_cfg(seed: u64) -> ProcessFabricConfig {
        ProcessFabricConfig {
            timing: FabricTiming::fast(),
            seed,
            respawn: true,
            telemetry: false,
        }
    }

    #[test]
    fn daemon_speaks_the_protocol_raw() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("raw", 2)).unwrap();
        let mut s = TcpStream::connect(daemon.addr()).unwrap();
        let hello = Frame::read_from(&mut s).unwrap();
        match hello {
            Frame::Hello {
                proto,
                name,
                workers,
                generation,
            } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(name, "raw");
                assert_eq!(workers, 2);
                assert_eq!(generation, 0);
            }
            other => panic!("expected HELLO, got {other:?}"),
        }
        // Stage a blob, dispatch against it, read the result.
        Frame::Transfer {
            key: 5,
            payload: b"hi ".to_vec(),
        }
        .write_to(&mut s)
        .unwrap();
        Frame::Dispatch {
            task: 1,
            attempt: 1,
            generation: 0,
            function: "echo".to_string(),
            deps: vec![5],
            payload: b"there".to_vec(),
        }
        .write_to(&mut s)
        .unwrap();
        Frame::Heartbeat {
            seq: 1,
            t_client_us: 777,
        }
        .write_to(&mut s)
        .unwrap();
        let mut saw_result = false;
        let mut saw_hb = false;
        let mut saw_transfer_ack = false;
        for _ in 0..3 {
            match Frame::read_from(&mut s).unwrap() {
                Frame::Result {
                    task,
                    attempt,
                    generation,
                    ok,
                    payload,
                } => {
                    assert_eq!((task, attempt, generation, ok), (1, 1, 0, true));
                    assert_eq!(payload, b"hi there".to_vec());
                    saw_result = true;
                }
                Frame::HeartbeatAck {
                    seq, t_client_us, ..
                } => {
                    // Unsubscribed: the ack comes back alone (no
                    // TELEMETRY rides behind it) with our stamp echoed.
                    assert_eq!((seq, t_client_us), (1, 777));
                    saw_hb = true;
                }
                Frame::TransferAck { key, stored } => {
                    assert_eq!((key, stored), (5, 3));
                    saw_transfer_ack = true;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(saw_result && saw_hb && saw_transfer_ack);
        Frame::Drain.write_to(&mut s).unwrap();
        assert!(matches!(
            Frame::read_from(&mut s).unwrap(),
            Frame::DrainAck { .. }
        ));
        daemon.join().unwrap();
    }

    #[test]
    fn daemon_ships_telemetry_only_when_subscribed() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("tel", 1)).unwrap();
        let mut s = TcpStream::connect(daemon.addr()).unwrap();
        assert!(matches!(
            Frame::read_from(&mut s).unwrap(),
            Frame::Hello { .. }
        ));
        Frame::TelemetrySub { level: 2 }.write_to(&mut s).unwrap();
        Frame::Dispatch {
            task: 9,
            attempt: 1,
            generation: 0,
            function: "echo".to_string(),
            deps: vec![],
            payload: b"x".to_vec(),
        }
        .write_to(&mut s)
        .unwrap();
        // Wait for the RESULT so the full span exists, then beat to
        // trigger a flush.
        loop {
            if matches!(Frame::read_from(&mut s).unwrap(), Frame::Result { .. }) {
                break;
            }
        }
        Frame::Heartbeat {
            seq: 1,
            t_client_us: 1,
        }
        .write_to(&mut s)
        .unwrap();
        let mut stages = Vec::new();
        let counters;
        loop {
            match Frame::read_from(&mut s).unwrap() {
                Frame::Telemetry {
                    generation,
                    seq,
                    events,
                    counters: c,
                    ..
                } => {
                    assert_eq!(generation, 0);
                    assert!(seq >= 1);
                    stages.extend(events.iter().map(|e| e.stage));
                    counters = c;
                    break;
                }
                Frame::HeartbeatAck { t_daemon_us, .. } => {
                    assert!(t_daemon_us > 0, "daemon must stamp its clock");
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // The attempt's full daemon-side span made it across.
        for want in [
            TEL_STAGE_RECV,
            TEL_STAGE_EXEC_BEGIN,
            TEL_STAGE_EXEC_END,
            TEL_STAGE_SENT,
        ] {
            assert!(stages.contains(&want), "missing stage {want} in {stages:?}");
        }
        assert!(counters.contains(&(TEL_CTR_DISPATCHES, 1)), "{counters:?}");
        assert!(counters.contains(&(TEL_CTR_RESULTS_OK, 1)), "{counters:?}");
        Frame::Drain.write_to(&mut s).unwrap();
        // The drain-triggered flush precedes the ack.
        let mut saw_final_flush = false;
        loop {
            match Frame::read_from(&mut s).unwrap() {
                Frame::Telemetry { .. } => saw_final_flush = true,
                Frame::DrainAck { .. } => break,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(saw_final_flush, "DRAIN must flush telemetry before acking");
        daemon.join().unwrap();
    }

    #[test]
    fn telemetry_store_drops_stale_generation_and_out_of_order_batches() {
        let ev = |t_us| TelemetryEvent {
            stage: TEL_STAGE_RECV,
            t_us,
            task: 1,
            attempt: 1,
            arg: 0,
        };
        let mut store = TelemetryStore::new();
        assert!(store.ingest(1, 1, 1, vec![ev(10)], vec![(TEL_CTR_DISPATCHES, 1)], vec![]));
        // A batch from a dead generation must never merge: its clock is
        // a different incarnation's and its counters would double-count.
        assert!(!store.ingest(1, 0, 7, vec![ev(20)], vec![(TEL_CTR_DISPATCHES, 9)], vec![]));
        // Replayed / reordered sequence numbers are refused whole.
        assert!(!store.ingest(1, 1, 1, vec![ev(30)], vec![], vec![]));
        assert!(store.ingest(1, 1, 2, vec![ev(40)], vec![], vec![]));
        assert!(!store.ingest(1, 1, 2, vec![ev(50)], vec![], vec![]));
        assert_eq!(store.dropped_batches, 3);
        let times: Vec<u64> = store.events.iter().map(|&(_, e)| e.t_us).collect();
        assert_eq!(times, vec![10, 40]);
        assert_eq!(store.gen_counters[&1], vec![(TEL_CTR_DISPATCHES, 1)]);
        assert!(!store.gen_counters.contains_key(&0));
    }

    #[test]
    fn process_fabric_connect_mode_round_trip() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("ep0", 2)).unwrap();
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "ep0".to_string(),
                workers: 2,
                mode: EndpointMode::Connect {
                    addr: daemon.addr().to_string(),
                },
            }],
            fast_cfg(7),
        );
        assert!(
            fabric.wait_probe(0, ProbeState::Alive, Duration::from_secs(5)),
            "endpoint never came up"
        );
        let blob = Arc::new(b"abc".to_vec());
        fabric.stage(0, 11, &blob);
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("fnv"),
                deps: vec![11],
                payload: b"xyz".to_vec(),
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(
            got,
            crate::fabric::fnv1a64(b"abcxyz").to_le_bytes().to_vec()
        );
        assert!(fabric.counters(0).connects >= 1);
        fabric.shutdown();
        daemon.join().unwrap();
    }

    #[test]
    fn submit_fails_fast_when_unreachable() {
        // Grab an ephemeral port and close the listener: connections are
        // refused, the fabric backs off, submissions fail promptly.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "gone".to_string(),
                workers: 1,
                mode: EndpointMode::Connect {
                    addr: dead.to_string(),
                },
            }],
            fast_cfg(3),
        );
        assert_eq!(fabric.probe(0), ProbeState::Dead);
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![],
                payload: vec![],
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let err = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap_err();
        assert!(err.contains("not connected"), "err = {err}");
        fabric.shutdown();
    }

    #[test]
    fn proxy_cut_mid_frame_then_reconnect() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("prox", 1)).unwrap();
        let proxy = ChaosProxy::start(daemon.addr()).unwrap();
        // Cut after 3 daemon→client bytes: mid-HELLO, guaranteed.
        proxy.cut_after_down_bytes(3);
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "prox".to_string(),
                workers: 1,
                mode: EndpointMode::Connect {
                    addr: proxy.addr().to_string(),
                },
            }],
            fast_cfg(11),
        );
        // First connection dies mid-frame; the reconnect (budget
        // disarmed) completes and work flows.
        assert!(
            fabric.wait_probe(0, ProbeState::Alive, Duration::from_secs(10)),
            "never recovered from mid-frame cut"
        );
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![],
                payload: b"ok".to_vec(),
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap(),
            b"ok".to_vec()
        );
        assert!(fabric.counters(0).connects >= 2, "{:?}", fabric.counters(0));
        fabric.shutdown();
        daemon.join().unwrap();
    }
}
