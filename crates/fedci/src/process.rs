//! Process-isolated endpoints over TCP — the fabric that survives
//! `kill -9`.
//!
//! Two halves:
//!
//! * **Daemon** ([`run_daemon`] / the `unifaas-endpointd` binary): one
//!   endpoint as its own OS process. It binds a listener, announces the
//!   bound address, and serves one client connection at a time with the
//!   [`crate::proto`] framing: blobs staged by TRANSFER, work arriving as
//!   DISPATCH, results flowing back as RESULT, liveness answered per
//!   HEARTBEAT. Results produced while the client is away are queued and
//!   **replayed on the next connection** — deliberately, because that is
//!   exactly the stale-RESULT case the client's attempt-generation guard
//!   must absorb.
//! * **Client** ([`ProcessFabric`]): one supervisor thread per endpoint
//!   owning the child process (spawn mode) or a remote address (connect
//!   mode), the connection, and the in-flight table. Heartbeats drive a
//!   missed-beat liveness verdict ([`FabricTiming::suspect_after`] /
//!   [`FabricTiming::down_after`]); a dead connection fails every
//!   outstanding attempt (the runtime above re-dispatches under a fresh
//!   attempt number), and reconnection runs seeded exponential backoff,
//!   respawning the child if it actually died.
//!
//! [`ChaosProxy`] sits between client and daemon for the nastier failure
//! modes: cut mid-frame after N bytes, stall one direction to fake a
//! half-open connection, or sever on command.

use crate::fabric::{
    assemble_input, Completion, Fabric, FabricTiming, FnRegistry, JobSpec, ProbeState,
};
use crate::proto::{Frame, PROTO_VERSION};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simkit::metrics::{CounterId, GaugeId, MetricsRegistry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The line a daemon prints on stdout once its listener is bound:
/// `LISTENING <addr>`. The spawning supervisor parses it to learn the
/// ephemeral port.
pub const LISTENING_PREFIX: &str = "LISTENING ";

/// How long the daemon blocks reading a connection before treating the
/// client as gone. Any live client heartbeats far more often than this.
const DAEMON_READ_TIMEOUT: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// Daemon-side fault injection, for chaos tests that need the *endpoint*
/// to misbehave (as opposed to the connection, which [`ChaosProxy`]
/// covers).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonChaos {
    /// Silently drop every Nth dispatched job (0 = never): the worker
    /// takes it and no RESULT ever comes back.
    pub swallow_every: usize,
    /// Sleep this long before executing each job (straggler injection;
    /// also widens the window for a result to complete while the client
    /// is disconnected).
    pub delay_ms: u64,
    /// Send every RESULT twice — a hostile duplicate the client's
    /// attempt guard must drop.
    pub dup_results: bool,
}

/// Configuration for one endpoint daemon.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Endpoint name, echoed in HELLO.
    pub name: String,
    /// Worker thread count.
    pub workers: usize,
    /// Listen address, typically `127.0.0.1:0` (ephemeral port).
    pub listen: String,
    /// Spawn generation, echoed in HELLO (the supervisor increments it
    /// per respawn).
    pub generation: u64,
    /// Fault injection switches.
    pub chaos: DaemonChaos,
}

impl DaemonConfig {
    /// A daemon on an ephemeral localhost port, no chaos.
    pub fn new(name: &str, workers: usize) -> Self {
        DaemonConfig {
            name: name.to_string(),
            workers,
            listen: "127.0.0.1:0".to_string(),
            generation: 0,
            chaos: DaemonChaos::default(),
        }
    }
}

/// State shared between the daemon's accept loop, workers and writer.
struct DaemonShared {
    /// Frames awaiting write, in order. RESULTs that fail to write (or
    /// arrive while disconnected) survive here for replay; acks are
    /// connection-scoped and dropped on write failure.
    outbox: Mutex<VecDeque<Frame>>,
    outbox_cv: Condvar,
    /// Current client connection (write half); `None` while between
    /// clients. The writer thread consults this before every frame.
    conn: Mutex<Option<TcpStream>>,
    busy: AtomicU32,
    queued: AtomicU32,
    completed: AtomicU64,
    jobs_seen: AtomicU64,
    stop_writer: AtomicBool,
}

impl DaemonShared {
    fn push(&self, f: Frame) {
        self.outbox.lock().push_back(f);
        self.outbox_cv.notify_all();
    }
}

/// Runs one endpoint daemon to completion: bind, announce via `on_ready`,
/// serve connections until a DRAIN arrives, finish queued work, flush
/// results, return. This is the entire body of `unifaas-endpointd`, kept
/// in the library so tests can run a daemon on a thread ([`spawn_daemon_thread`])
/// instead of a child process.
pub fn run_daemon<F: FnOnce(SocketAddr)>(cfg: DaemonConfig, on_ready: F) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    on_ready(addr);

    let registry = FnRegistry::builtins();
    let blobs: Arc<Mutex<HashMap<u64, Arc<Vec<u8>>>>> = Arc::new(Mutex::new(HashMap::new()));
    let shared = Arc::new(DaemonShared {
        outbox: Mutex::new(VecDeque::new()),
        outbox_cv: Condvar::new(),
        conn: Mutex::new(None),
        busy: AtomicU32::new(0),
        queued: AtomicU32::new(0),
        completed: AtomicU64::new(0),
        jobs_seen: AtomicU64::new(0),
        stop_writer: AtomicBool::new(false),
    });

    let (job_tx, job_rx) = unbounded::<JobSpec>();
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let rx = job_rx.clone();
        let shared = Arc::clone(&shared);
        let blobs = Arc::clone(&blobs);
        let registry = registry.clone();
        let chaos = cfg.chaos;
        workers.push(
            std::thread::Builder::new()
                .name(format!("{}-worker-{i}", cfg.name))
                .spawn(move || daemon_worker(&rx, &shared, &blobs, &registry, &chaos))
                .expect("spawn daemon worker"),
        );
    }

    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("{}-writer", cfg.name))
            .spawn(move || daemon_writer(&shared))
            .expect("spawn daemon writer")
    };

    // Accept loop: one client at a time, until DRAIN.
    let mut draining = false;
    while !draining {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(DAEMON_READ_TIMEOUT)).ok();
        stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
        // HELLO goes out first, before the writer can replay queued
        // results on this connection.
        let hello = Frame::Hello {
            proto: PROTO_VERSION,
            name: cfg.name.clone(),
            workers: cfg.workers as u32,
            generation: cfg.generation,
        };
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if hello.write_to(&mut write_half).is_err() {
            continue;
        }
        *shared.conn.lock() = Some(write_half);
        shared.outbox_cv.notify_all();

        draining = daemon_serve_connection(stream, &shared, &blobs, &job_tx);
        if !draining {
            // Connection lost; the write half stays queued-for-replay.
            *shared.conn.lock() = None;
        }
    }

    // Drain: no new work; finish the queue, flush results (the final
    // connection stays open until the outbox is empty), exit.
    drop(job_tx);
    for w in workers {
        let _ = w.join();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !shared.outbox.lock().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.stop_writer.store(true, Ordering::SeqCst);
    shared.outbox_cv.notify_all();
    let _ = writer.join();
    *shared.conn.lock() = None;
    Ok(())
}

/// Reads frames from one client connection until it breaks or DRAINs.
/// Returns `true` if the daemon should shut down (DRAIN received).
fn daemon_serve_connection(
    mut stream: TcpStream,
    shared: &DaemonShared,
    blobs: &Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    job_tx: &Sender<JobSpec>,
) -> bool {
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(f) => f,
            Err(_) => return false, // connection gone; back to accept
        };
        match frame {
            Frame::Dispatch {
                task,
                attempt,
                function,
                deps,
                payload,
            } => {
                shared.queued.fetch_add(1, Ordering::SeqCst);
                let _ = job_tx.send(JobSpec {
                    task,
                    attempt,
                    function: Arc::from(function.as_str()),
                    deps,
                    payload,
                });
            }
            Frame::Transfer { key, payload } => {
                let stored = payload.len() as u64;
                blobs.lock().insert(key, Arc::new(payload));
                shared.push(Frame::TransferAck { key, stored });
            }
            Frame::Heartbeat { seq } => {
                shared.push(Frame::HeartbeatAck {
                    seq,
                    busy: shared.busy.load(Ordering::SeqCst),
                });
            }
            Frame::Poll => {
                shared.push(Frame::PollAck {
                    busy: shared.busy.load(Ordering::SeqCst),
                    queued: shared.queued.load(Ordering::SeqCst),
                    completed: shared.completed.load(Ordering::SeqCst),
                });
            }
            Frame::Drain => {
                shared.push(Frame::DrainAck {
                    remaining: shared.queued.load(Ordering::SeqCst)
                        + shared.busy.load(Ordering::SeqCst),
                });
                return true;
            }
            // Client-bound frames arriving here are a protocol violation;
            // tolerate them rather than crash the endpoint.
            _ => {}
        }
    }
}

/// One daemon worker: pull a job, apply chaos, execute, queue the RESULT.
fn daemon_worker(
    rx: &Receiver<JobSpec>,
    shared: &DaemonShared,
    blobs: &Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    registry: &FnRegistry,
    chaos: &DaemonChaos,
) {
    while let Ok(job) = rx.recv() {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        let n = shared.jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if chaos.swallow_every > 0 && n.is_multiple_of(chaos.swallow_every as u64) {
            continue; // crashed mid-execution: no RESULT, ever
        }
        if chaos.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(chaos.delay_ms));
        }
        shared.busy.fetch_add(1, Ordering::SeqCst);
        let outcome = match registry.get(&job.function) {
            None => Err(format!("unknown function `{}`", job.function)),
            Some(f) => assemble_input(&blobs.lock(), &job).and_then(|input| f(&input)),
        };
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        shared.completed.fetch_add(1, Ordering::SeqCst);
        let result = Frame::Result {
            task: job.task,
            attempt: job.attempt,
            ok: outcome.is_ok(),
            payload: match outcome {
                Ok(bytes) => bytes,
                Err(msg) => msg.into_bytes(),
            },
        };
        if chaos.dup_results {
            shared.push(result.clone());
        }
        shared.push(result);
    }
}

/// The daemon's single writer: drains the outbox onto whatever connection
/// is current. RESULTs that cannot be written survive for the next
/// connection; acks do not (they are meaningless to a future client).
fn daemon_writer(shared: &DaemonShared) {
    loop {
        let frame = {
            let mut q = shared.outbox.lock();
            loop {
                if shared.stop_writer.load(Ordering::SeqCst) {
                    return;
                }
                if !q.is_empty() && shared.conn.lock().is_some() {
                    break q.pop_front().expect("non-empty");
                }
                shared.outbox_cv.wait_for(&mut q, Duration::from_millis(50));
            }
        };
        let stream = shared.conn.lock().as_ref().and_then(|s| s.try_clone().ok());
        let wrote = match stream {
            Some(mut s) => frame.write_to(&mut s).is_ok(),
            None => false,
        };
        if !wrote {
            // Connection raced away mid-write. Results are precious —
            // requeue them at the front so replay preserves order.
            if matches!(frame, Frame::Result { .. }) {
                shared.outbox.lock().push_front(frame);
            }
            *shared.conn.lock() = None;
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Handle to a daemon running on a thread in this process (connect-mode
/// tests; production daemons are child processes).
pub struct DaemonHandle {
    addr: SocketAddr,
    join: Option<JoinHandle<std::io::Result<()>>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (it exits after a DRAIN).
    pub fn join(mut self) -> std::io::Result<()> {
        match self.join.take() {
            Some(j) => j
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("daemon thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        // Detach: a daemon that was never drained would block a join
        // forever on accept(). Tests that care call `join()` explicitly.
        drop(self.join.take());
    }
}

/// Runs [`run_daemon`] on a thread and returns once the listener is bound.
pub fn spawn_daemon_thread(cfg: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let (tx, rx) = std::sync::mpsc::channel();
    let name = cfg.name.clone();
    let join = std::thread::Builder::new()
        .name(format!("{name}-daemon"))
        .spawn(move || {
            run_daemon(cfg, |addr| {
                let _ = tx.send(addr);
            })
        })?;
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(addr) => Ok(DaemonHandle {
            addr,
            join: Some(join),
        }),
        Err(_) => Err(std::io::Error::other("daemon failed to bind")),
    }
}

// ---------------------------------------------------------------------------
// Client: ProcessFabric
// ---------------------------------------------------------------------------

/// How the fabric reaches one endpoint.
#[derive(Clone, Debug)]
pub enum EndpointMode {
    /// Spawn `command` as a child process (argv prefix; the fabric
    /// appends `--name/--workers/--listen/--generation`), parse the
    /// `LISTENING` line, connect. The supervisor respawns it — with an
    /// incremented generation — if it dies.
    Spawn {
        /// Program and leading arguments (e.g. the `unifaas-endpointd`
        /// path plus chaos flags).
        command: Vec<String>,
    },
    /// Connect to an already-running daemon (or a [`ChaosProxy`] in
    /// front of one).
    Connect {
        /// `host:port` of the daemon.
        addr: String,
    },
}

/// One endpoint's identity and reachability.
#[derive(Clone, Debug)]
pub struct ProcessEndpointSpec {
    /// Endpoint name (also the spawned daemon's `--name`).
    pub name: String,
    /// Worker count (also the spawned daemon's `--workers`; in connect
    /// mode this is the placement-capacity assumption until HELLO says
    /// otherwise).
    pub workers: usize,
    /// Spawn or connect.
    pub mode: EndpointMode,
}

/// Fabric-wide knobs.
#[derive(Clone, Debug)]
pub struct ProcessFabricConfig {
    /// Heartbeat/liveness/backoff intervals (validated at construction).
    pub timing: FabricTiming,
    /// Seed for the per-endpoint backoff-jitter RNG streams.
    pub seed: u64,
    /// Whether a dead spawned child is respawned (generation + 1). With
    /// this off a killed endpoint stays dead — useful for asserting
    /// permanent-loss behaviour.
    pub respawn: bool,
}

impl Default for ProcessFabricConfig {
    fn default() -> Self {
        ProcessFabricConfig {
            timing: FabricTiming::default(),
            seed: 1,
            respawn: true,
        }
    }
}

/// Monotone per-endpoint robustness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessCounters {
    /// Successful connections established (first connect included).
    pub connects: u64,
    /// Child processes spawned beyond the first (i.e. respawns).
    pub respawns: u64,
    /// Outstanding attempts failed over because their connection died.
    pub failovers: u64,
    /// RESULT frames dropped because no matching (task, attempt) was
    /// outstanding — replays from resurrected endpoints, duplicates.
    pub stale_results: u64,
}

/// Per-endpoint state shared between the supervisor thread and the
/// fabric's public accessors.
struct EpShared {
    probe: AtomicU8, // 0 = Alive, 1 = Suspect, 2 = Dead
    busy: AtomicU32,
    workers: AtomicU32,
    generation: AtomicU64,
    connects: AtomicU64,
    respawns: AtomicU64,
    failovers: AtomicU64,
    stale_results: AtomicU64,
}

impl EpShared {
    fn new(workers: usize) -> Self {
        EpShared {
            probe: AtomicU8::new(2),
            busy: AtomicU32::new(0),
            workers: AtomicU32::new(workers as u32),
            generation: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            stale_results: AtomicU64::new(0),
        }
    }

    fn set_probe(&self, p: ProbeState) {
        self.probe.store(
            match p {
                ProbeState::Alive => 0,
                ProbeState::Suspect => 1,
                ProbeState::Dead => 2,
            },
            Ordering::SeqCst,
        );
    }

    fn get_probe(&self) -> ProbeState {
        match self.probe.load(Ordering::SeqCst) {
            0 => ProbeState::Alive,
            1 => ProbeState::Suspect,
            _ => ProbeState::Dead,
        }
    }
}

/// Everything the supervisor thread reacts to, merged into one channel so
/// a single `recv_timeout` drives commands, inbound frames, and timer
/// deadlines alike.
enum Ev {
    Stage(u64, Arc<Vec<u8>>),
    Submit(JobSpec, Completion),
    /// A frame from the reader of connection-epoch `.0`.
    Frame(u64, Frame),
    /// The reader of connection-epoch `.0` hit EOF/error.
    ReaderClosed(u64),
    /// SIGKILL the child (chaos hook).
    Kill,
    Shutdown,
}

/// One live connection as the supervisor sees it.
struct Conn {
    stream: TcpStream,
    epoch: u64,
    staged: HashSet<u64>,
    hb_last_sent: Instant,
    last_ack: Instant,
}

/// The supervisor for one endpoint.
struct Supervisor {
    spec: ProcessEndpointSpec,
    timing: FabricTiming,
    respawn: bool,
    shared: Arc<EpShared>,
    rx: Receiver<Ev>,
    self_tx: Sender<Ev>,
    rng: StdRng,
    child: Option<Child>,
    child_addr: Option<SocketAddr>,
    spawned_once: bool,
    conn: Option<Conn>,
    epoch: u64,
    hb_seq: u64,
    backoff_exp: u32,
    next_connect: Instant,
    gave_up: bool,
    outstanding: HashMap<(u64, u32), Completion>,
    blob_cache: HashMap<u64, Arc<Vec<u8>>>,
}

impl Supervisor {
    fn run(mut self) {
        loop {
            let now = Instant::now();
            if self.conn.is_none() && !self.gave_up && now >= self.next_connect {
                self.try_connect();
            }
            if let Some(c) = &mut self.conn {
                if now.duration_since(c.hb_last_sent) >= self.timing.heartbeat_interval {
                    self.hb_seq += 1;
                    let hb = Frame::Heartbeat { seq: self.hb_seq };
                    c.hb_last_sent = now;
                    if hb.write_to(&mut &c.stream).is_err() {
                        self.conn_lost("heartbeat write failed");
                    }
                }
            }
            if let Some(c) = &self.conn {
                let silent = now.duration_since(c.last_ack);
                if silent >= self.timing.down_after {
                    self.conn_lost("liveness timeout");
                } else if silent >= self.timing.suspect_after {
                    self.shared.set_probe(ProbeState::Suspect);
                }
            }
            let wait = self
                .next_deadline()
                .saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(Ev::Shutdown) => return self.shutdown(),
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return self.shutdown(),
            }
        }
    }

    /// The earliest instant at which time-driven work (heartbeat,
    /// liveness verdict, reconnect attempt) is due.
    fn next_deadline(&self) -> Instant {
        match &self.conn {
            Some(c) => {
                let hb = c.hb_last_sent + self.timing.heartbeat_interval;
                let suspect = c.last_ack + self.timing.suspect_after;
                let down = c.last_ack + self.timing.down_after;
                hb.min(suspect).min(down)
            }
            None => {
                if self.gave_up {
                    Instant::now() + Duration::from_secs(3600)
                } else {
                    self.next_connect
                }
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Stage(key, bytes) => {
                self.blob_cache.insert(key, Arc::clone(&bytes));
                self.stage_to_conn(key);
            }
            Ev::Submit(job, done) => self.submit(job, done),
            Ev::Frame(epoch, frame) => self.on_frame(epoch, frame),
            Ev::ReaderClosed(epoch) => {
                if self.conn.as_ref().is_some_and(|c| c.epoch == epoch) {
                    self.conn_lost("connection closed");
                }
            }
            Ev::Kill => self.kill_child(),
            Ev::Shutdown => unreachable!("handled in run()"),
        }
    }

    /// Ships blob `key` to the current connection unless it already has
    /// it this epoch.
    fn stage_to_conn(&mut self, key: u64) {
        let Some(c) = &mut self.conn else { return };
        if c.staged.contains(&key) {
            return;
        }
        let Some(bytes) = self.blob_cache.get(&key) else {
            return;
        };
        let frame = Frame::Transfer {
            key,
            payload: bytes.as_ref().clone(),
        };
        if frame.write_to(&mut &c.stream).is_ok() {
            c.staged.insert(key);
        } else {
            self.conn_lost("transfer write failed");
        }
    }

    fn submit(&mut self, job: JobSpec, done: Completion) {
        if self.conn.is_none() {
            done(Err(format!("endpoint {} not connected", self.spec.name)));
            return;
        }
        // Re-stage any dep this connection epoch hasn't seen (a restarted
        // daemon lost its blob store; a reconnect cleared `staged`).
        for d in job.deps.clone() {
            if !self.blob_cache.contains_key(&d) {
                done(Err(format!(
                    "dep blob {d} for task {} never staged",
                    job.task
                )));
                return;
            }
            self.stage_to_conn(d);
            if self.conn.is_none() {
                done(Err(format!("endpoint {} not connected", self.spec.name)));
                return;
            }
        }
        let frame = Frame::Dispatch {
            task: job.task,
            attempt: job.attempt,
            function: job.function.to_string(),
            deps: job.deps.clone(),
            payload: job.payload.clone(),
        };
        let c = self.conn.as_mut().expect("checked above");
        if frame.write_to(&mut &c.stream).is_err() {
            self.conn_lost("dispatch write failed");
            done(Err(format!(
                "endpoint {} dispatch write failed",
                self.spec.name
            )));
            return;
        }
        self.outstanding.insert((job.task, job.attempt), done);
    }

    fn on_frame(&mut self, epoch: u64, frame: Frame) {
        if self.conn.as_ref().is_none_or(|c| c.epoch != epoch) {
            return; // a stale reader's leftovers
        }
        // Any frame is proof of life.
        if let Some(c) = &mut self.conn {
            c.last_ack = Instant::now();
        }
        match frame {
            Frame::Hello {
                proto,
                workers,
                generation,
                ..
            } => {
                if proto != PROTO_VERSION {
                    self.conn_lost("protocol version mismatch");
                    return;
                }
                self.shared.workers.store(workers, Ordering::SeqCst);
                self.shared.generation.store(generation, Ordering::SeqCst);
                self.shared.set_probe(ProbeState::Alive);
            }
            Frame::HeartbeatAck { busy, .. } => {
                self.shared.busy.store(busy, Ordering::SeqCst);
                self.shared.set_probe(ProbeState::Alive);
            }
            Frame::PollAck { busy, .. } => {
                self.shared.busy.store(busy, Ordering::SeqCst);
            }
            Frame::Result {
                task,
                attempt,
                ok,
                payload,
            } => match self.outstanding.remove(&(task, attempt)) {
                Some(done) => done(if ok {
                    Ok(payload)
                } else {
                    Err(String::from_utf8_lossy(&payload).into_owned())
                }),
                None => {
                    // A replay from a resurrected connection, a
                    // duplicate, or an attempt we already failed over.
                    // Exactly-once resolution = drop it here.
                    self.shared.stale_results.fetch_add(1, Ordering::SeqCst);
                }
            },
            Frame::TransferAck { .. } | Frame::DrainAck { .. } => {}
            _ => {}
        }
    }

    fn try_connect(&mut self) {
        let addr = match self.ensure_target() {
            Some(a) => a,
            None => {
                self.schedule_reconnect();
                return;
            }
        };
        match TcpStream::connect_timeout(&addr, self.timing.connect_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_write_timeout(Some(self.timing.down_after)).ok();
                self.epoch += 1;
                let epoch = self.epoch;
                if let Ok(mut read_half) = stream.try_clone() {
                    let tx = self.self_tx.clone();
                    let name = self.spec.name.clone();
                    std::thread::Builder::new()
                        .name(format!("{name}-reader-{epoch}"))
                        .spawn(move || loop {
                            match Frame::read_from(&mut read_half) {
                                Ok(f) => {
                                    if tx.send(Ev::Frame(epoch, f)).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => {
                                    let _ = tx.send(Ev::ReaderClosed(epoch));
                                    return;
                                }
                            }
                        })
                        .expect("spawn reader");
                } else {
                    self.schedule_reconnect();
                    return;
                }
                let now = Instant::now();
                self.conn = Some(Conn {
                    stream,
                    epoch,
                    staged: HashSet::new(),
                    // Backdate so the first heartbeat goes out on the
                    // next loop iteration.
                    hb_last_sent: now - self.timing.heartbeat_interval,
                    last_ack: now,
                });
                self.backoff_exp = 0;
                self.shared.connects.fetch_add(1, Ordering::SeqCst);
                // Probe flips to Alive when HELLO arrives.
            }
            Err(_) => self.schedule_reconnect(),
        }
    }

    /// Resolves the address to connect to, spawning/respawning the child
    /// if this endpoint owns one and it is not running.
    fn ensure_target(&mut self) -> Option<SocketAddr> {
        match self.spec.mode.clone() {
            EndpointMode::Connect { addr } => {
                addr.to_socket_addrs().ok().and_then(|mut a| a.next())
            }
            EndpointMode::Spawn { command } => {
                let child_dead = match &mut self.child {
                    None => true,
                    Some(ch) => ch.try_wait().map(|st| st.is_some()).unwrap_or(true),
                };
                if child_dead {
                    if self.spawned_once && !self.respawn {
                        self.gave_up = true;
                        return None;
                    }
                    let generation =
                        self.shared.respawns.load(Ordering::SeqCst) + u64::from(self.spawned_once);
                    match spawn_endpointd(&command, &self.spec, generation) {
                        Ok((child, addr)) => {
                            if self.spawned_once {
                                self.shared.respawns.fetch_add(1, Ordering::SeqCst);
                            }
                            self.spawned_once = true;
                            self.child = Some(child);
                            self.child_addr = Some(addr);
                        }
                        Err(_) => return None,
                    }
                }
                self.child_addr
            }
        }
    }

    /// Declares the connection dead: fail every outstanding attempt (the
    /// runtime re-dispatches under fresh attempt numbers), clear the
    /// staged set, and schedule reconnection.
    fn conn_lost(&mut self, reason: &str) {
        let Some(c) = self.conn.take() else { return };
        let _ = c.stream.shutdown(Shutdown::Both);
        self.shared.set_probe(ProbeState::Dead);
        let n = self.outstanding.len() as u64;
        if n > 0 {
            self.shared.failovers.fetch_add(n, Ordering::SeqCst);
        }
        for ((task, _attempt), done) in std::mem::take(&mut self.outstanding) {
            done(Err(format!(
                "endpoint {}: {reason} (task {task} in flight)",
                self.spec.name
            )));
        }
        // Retry promptly; if the peer is really gone the connect failure
        // path takes over with exponential backoff.
        self.next_connect = Instant::now();
    }

    /// Seeded exponential backoff with multiplicative jitter in
    /// [0.5, 1.5): deterministic per (fabric seed, endpoint), desynced
    /// across endpoints so a mass outage does not produce a reconnect
    /// stampede.
    fn schedule_reconnect(&mut self) {
        let base = self.timing.reconnect_base.as_secs_f64();
        let max = self.timing.reconnect_max.as_secs_f64();
        let exp = f64::from(self.backoff_exp.min(16));
        let jitter = 0.5 + self.rng.gen::<f64>();
        let delay = (base * exp.exp2() * jitter).min(max);
        self.backoff_exp = self.backoff_exp.saturating_add(1);
        self.next_connect = Instant::now() + Duration::from_secs_f64(delay);
    }

    /// SIGKILL the child — the chaos hook. `Child::kill` is SIGKILL on
    /// unix: no cleanup, no flush, the real crash.
    fn kill_child(&mut self) {
        if let Some(mut ch) = self.child.take() {
            let _ = ch.kill();
            let _ = ch.wait(); // reap
        }
    }

    fn shutdown(mut self) {
        if let Some(c) = &mut self.conn {
            let epoch = c.epoch;
            if Frame::Drain.write_to(&mut &c.stream).is_ok() {
                // Give the daemon a moment to ack so it exits cleanly;
                // results that race in still resolve normally.
                let deadline = Instant::now() + Duration::from_millis(500);
                'wait: while Instant::now() < deadline {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(left.max(Duration::from_millis(1))) {
                        Ok(Ev::Frame(e, Frame::DrainAck { .. })) if e == epoch => break 'wait,
                        Ok(Ev::Frame(e, f)) => self.on_frame(e, f),
                        Ok(_) | Err(RecvTimeoutError::Timeout) => break 'wait,
                        Err(RecvTimeoutError::Disconnected) => break 'wait,
                    }
                }
            }
        }
        if let Some(c) = self.conn.take() {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        if let Some(mut ch) = self.child.take() {
            // Post-drain the daemon exits on its own; give it a beat,
            // then make sure.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match ch.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = ch.kill();
                        let _ = ch.wait();
                        break;
                    }
                }
            }
        }
        self.shared.set_probe(ProbeState::Dead);
        for (_, done) in std::mem::take(&mut self.outstanding) {
            done(Err("fabric shut down".to_string()));
        }
    }
}

/// Spawns `unifaas-endpointd` (or whatever `command` names) and parses
/// its `LISTENING <addr>` announcement.
fn spawn_endpointd(
    command: &[String],
    spec: &ProcessEndpointSpec,
    generation: u64,
) -> std::io::Result<(Child, SocketAddr)> {
    if command.is_empty() {
        return Err(std::io::Error::other("empty spawn command"));
    }
    let mut cmd = Command::new(&command[0]);
    cmd.args(&command[1..])
        .arg("--name")
        .arg(&spec.name)
        .arg("--workers")
        .arg(spec.workers.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--generation")
        .arg(generation.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("no child stdout"))?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other("daemon exited before announcing"));
        }
        if let Some(rest) = line.trim().strip_prefix(LISTENING_PREFIX) {
            match rest.parse::<SocketAddr>() {
                Ok(a) => break a,
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other("bad LISTENING line"));
                }
            }
        }
    };
    Ok((child, addr))
}

/// Metric handles for one process-fabric endpoint (see
/// [`ProcessFabric::register_metrics`]), with counter high-water marks
/// for monotone sampling — same shape as the threaded pool's.
pub struct ProcMetricIds {
    workers: GaugeId,
    busy: GaugeId,
    up: GaugeId,
    connects: CounterId,
    respawns: CounterId,
    failovers: CounterId,
    stale: CounterId,
    last: ProcessCounters,
}

/// The process-isolated fabric: one supervisor thread per endpoint, child
/// daemons (or remote addresses) behind it, the [`Fabric`] trait in front.
pub struct ProcessFabric {
    labels: Vec<String>,
    shared: Vec<Arc<EpShared>>,
    txs: Vec<Sender<Ev>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

impl ProcessFabric {
    /// Starts one supervisor per endpoint. Spawn-mode children launch
    /// (and connect) asynchronously — use [`ProcessFabric::wait_probe`]
    /// to block until an endpoint is up.
    pub fn new(specs: Vec<ProcessEndpointSpec>, cfg: ProcessFabricConfig) -> Self {
        cfg.timing.validate().expect("invalid fabric timing");
        assert!(!specs.is_empty(), "need at least one endpoint");
        let mut labels = Vec::new();
        let mut shared = Vec::new();
        let mut txs = Vec::new();
        let mut joins = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Ev>();
            let ep_shared = Arc::new(EpShared::new(spec.workers));
            let sup = Supervisor {
                timing: cfg.timing,
                respawn: cfg.respawn,
                shared: Arc::clone(&ep_shared),
                rx,
                self_tx: tx.clone(),
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                ),
                child: None,
                child_addr: None,
                spawned_once: false,
                conn: None,
                epoch: 0,
                hb_seq: 0,
                backoff_exp: 0,
                next_connect: Instant::now(),
                gave_up: false,
                outstanding: HashMap::new(),
                blob_cache: HashMap::new(),
                spec: spec.clone(),
            };
            labels.push(spec.name.clone());
            shared.push(ep_shared);
            txs.push(tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("{}-supervisor", spec.name))
                    .spawn(move || sup.run())
                    .expect("spawn supervisor"),
            );
        }
        ProcessFabric {
            labels,
            shared,
            txs,
            joins: Mutex::new(joins),
            down: AtomicBool::new(false),
        }
    }

    /// Blocks until `ep`'s probe reads `want`, up to `timeout`.
    pub fn wait_probe(&self, ep: usize, want: ProbeState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.shared[ep].get_probe() == want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared[ep].get_probe() == want
    }

    /// SIGKILLs `ep`'s child daemon (spawn mode only; a no-op otherwise).
    /// The supervisor notices via missed heartbeats / connection reset,
    /// fails over in-flight work, and respawns if configured to.
    pub fn kill(&self, ep: usize) {
        let _ = self.txs[ep].send(Ev::Kill);
    }

    /// Robustness counters for `ep`.
    pub fn counters(&self, ep: usize) -> ProcessCounters {
        let s = &self.shared[ep];
        ProcessCounters {
            connects: s.connects.load(Ordering::SeqCst),
            respawns: s.respawns.load(Ordering::SeqCst),
            failovers: s.failovers.load(Ordering::SeqCst),
            stale_results: s.stale_results.load(Ordering::SeqCst),
        }
    }

    /// The spawn generation `ep` last announced in HELLO.
    pub fn generation(&self, ep: usize) -> u64 {
        self.shared[ep].generation.load(Ordering::SeqCst)
    }

    /// Registers this fabric's per-endpoint gauge/counter families,
    /// mirroring the threaded pool's taxonomy (`fedci_proc_*`).
    pub fn register_metrics(&self, reg: &mut MetricsRegistry) -> Vec<ProcMetricIds> {
        self.labels
            .iter()
            .map(|name| {
                let l = &[("endpoint", name.as_str())];
                ProcMetricIds {
                    workers: reg.gauge("fedci_proc_workers", "Workers at the endpoint daemon.", l),
                    busy: reg.gauge(
                        "fedci_proc_busy_workers",
                        "Workers executing, per last heartbeat ack.",
                        l,
                    ),
                    up: reg.gauge(
                        "fedci_proc_up",
                        "1 while the endpoint connection is Alive.",
                        l,
                    ),
                    connects: reg.counter(
                        "fedci_proc_connects_total",
                        "Connections established to the endpoint.",
                        l,
                    ),
                    respawns: reg.counter(
                        "fedci_proc_respawns_total",
                        "Endpoint daemons respawned after dying.",
                        l,
                    ),
                    failovers: reg.counter(
                        "fedci_proc_failovers_total",
                        "In-flight attempts failed over on connection loss.",
                        l,
                    ),
                    stale: reg.counter(
                        "fedci_proc_stale_results_total",
                        "RESULT frames dropped by the attempt guard.",
                        l,
                    ),
                    last: ProcessCounters::default(),
                }
            })
            .collect()
    }

    /// Samples every endpoint's atomics into `reg`; counters advance by
    /// delta so repeated scrapes stay monotone.
    pub fn sample_metrics(&self, reg: &mut MetricsRegistry, ids: &mut [ProcMetricIds]) {
        for (ep, id) in ids.iter_mut().enumerate() {
            let s = &self.shared[ep];
            reg.set(id.workers, f64::from(s.workers.load(Ordering::SeqCst)));
            reg.set(id.busy, f64::from(s.busy.load(Ordering::SeqCst)));
            reg.set(
                id.up,
                if s.get_probe() == ProbeState::Alive {
                    1.0
                } else {
                    0.0
                },
            );
            let now = self.counters(ep);
            reg.inc(id.connects, (now.connects - id.last.connects) as f64);
            reg.inc(id.respawns, (now.respawns - id.last.respawns) as f64);
            reg.inc(id.failovers, (now.failovers - id.last.failovers) as f64);
            reg.inc(id.stale, (now.stale_results - id.last.stale_results) as f64);
            id.last = now;
        }
    }
}

impl Fabric for ProcessFabric {
    fn labels(&self) -> &[String] {
        &self.labels
    }

    fn n_workers(&self, ep: usize) -> usize {
        self.shared[ep].workers.load(Ordering::SeqCst) as usize
    }

    fn busy_workers(&self, ep: usize) -> usize {
        self.shared[ep].busy.load(Ordering::SeqCst) as usize
    }

    fn probe(&self, ep: usize) -> ProbeState {
        self.shared[ep].get_probe()
    }

    fn stage(&self, ep: usize, key: u64, bytes: &Arc<Vec<u8>>) {
        let _ = self.txs[ep].send(Ev::Stage(key, Arc::clone(bytes)));
    }

    fn submit(&self, ep: usize, job: JobSpec, done: Completion) {
        if let Err(e) = self.txs[ep].send(Ev::Submit(job, done)) {
            if let Ev::Submit(_, done) = e.0 {
                done(Err(format!("endpoint {} supervisor gone", self.labels[ep])));
            }
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.txs {
            let _ = tx.send(Ev::Shutdown);
        }
        for j in self.joins.lock().drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for ProcessFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// ChaosProxy
// ---------------------------------------------------------------------------

/// A fault-injecting TCP proxy between a [`ProcessFabric`] client and a
/// daemon: forwards byte streams until told to cut mid-frame
/// ([`ChaosProxy::cut_after_down_bytes`]), sever ([`ChaosProxy::cut_now`]),
/// or stall the daemon→client direction ([`ChaosProxy::set_stall_down`])
/// — the half-open connection where the peer is silent but the socket
/// never errors.
pub struct ChaosProxy {
    addr: SocketAddr,
    ctl: Arc<ProxyCtl>,
    join: Option<JoinHandle<()>>,
}

struct ProxyCtl {
    upstream: SocketAddr,
    /// Remaining daemon→client bytes before an abrupt cut; -1 = no cut
    /// armed. One-shot: disarms itself after firing.
    cut_down_budget: AtomicI64,
    stall_down: AtomicBool,
    closed: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral localhost port forwarding to
    /// `upstream`. Serves one client connection at a time (matching the
    /// daemon) and re-accepts after every cut, so reconnects flow
    /// through.
    pub fn start(upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let ctl = Arc::new(ProxyCtl {
            upstream,
            cut_down_budget: AtomicI64::new(-1),
            stall_down: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let ctl2 = Arc::clone(&ctl);
        let join = std::thread::Builder::new()
            .name("chaos-proxy".to_string())
            .spawn(move || proxy_accept_loop(&listener, &ctl2))?;
        Ok(ChaosProxy {
            addr,
            ctl,
            join: Some(join),
        })
    }

    /// The proxy's listen address (point the fabric's connect mode here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Severs the current connection immediately, both directions.
    pub fn cut_now(&self) {
        for s in self.ctl.conns.lock().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Arms a one-shot cut after `n` more daemon→client bytes — lands
    /// mid-frame for any frame longer than `n`.
    pub fn cut_after_down_bytes(&self, n: u64) {
        self.ctl
            .cut_down_budget
            .store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Stalls (or resumes) the daemon→client direction while leaving the
    /// sockets open: acks stop arriving, nothing errors — the client
    /// must conclude death from silence alone.
    pub fn set_stall_down(&self, stall: bool) {
        self.ctl.stall_down.store(stall, Ordering::SeqCst);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.ctl.closed.store(true, Ordering::SeqCst);
        self.cut_now();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn proxy_accept_loop(listener: &TcpListener, ctl: &Arc<ProxyCtl>) {
    while !ctl.closed.load(Ordering::SeqCst) {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => return,
        };
        let upstream = match TcpStream::connect_timeout(&ctl.upstream, Duration::from_secs(2)) {
            Ok(s) => s,
            Err(_) => continue,
        };
        client.set_nodelay(true).ok();
        upstream.set_nodelay(true).ok();
        // Short read timeouts let the pumps notice `closed` and cuts.
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        upstream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        {
            let mut conns = ctl.conns.lock();
            conns.clear();
            if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                conns.push(c);
                conns.push(u);
            }
        }
        let up = {
            let (mut src, mut dst) = match (client.try_clone(), upstream.try_clone()) {
                (Ok(s), Ok(d)) => (s, d),
                _ => continue,
            };
            let ctl = Arc::clone(ctl);
            std::thread::spawn(move || proxy_pump(&mut src, &mut dst, &ctl, false))
        };
        let down = {
            let (mut src, mut dst) = (upstream, client);
            let ctl = Arc::clone(ctl);
            std::thread::spawn(move || proxy_pump(&mut src, &mut dst, &ctl, true))
        };
        let _ = up.join();
        let _ = down.join();
        ctl.conns.lock().clear();
    }
}

/// Copies `src` → `dst` in small chunks, applying stall/cut controls when
/// pumping the daemon→client (`down`) direction.
fn proxy_pump(src: &mut TcpStream, dst: &mut TcpStream, ctl: &ProxyCtl, down: bool) {
    let mut buf = [0u8; 256];
    loop {
        if ctl.closed.load(Ordering::SeqCst) {
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        if down {
            while ctl.stall_down.load(Ordering::SeqCst) {
                if ctl.closed.load(Ordering::SeqCst) {
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let budget = ctl.cut_down_budget.load(Ordering::SeqCst);
            if budget >= 0 {
                let allow = (budget as usize).min(n);
                if allow > 0 && dst.write_all(&buf[..allow]).is_err() {
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                if n >= budget as usize {
                    // The cut: close both sides abruptly, disarm.
                    ctl.cut_down_budget.store(-1, Ordering::SeqCst);
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                ctl.cut_down_budget
                    .store(budget - n as i64, Ordering::SeqCst);
                continue;
            }
        }
        if dst.write_all(&buf[..n]).is_err() {
            let _ = src.shutdown(Shutdown::Both);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn fast_cfg(seed: u64) -> ProcessFabricConfig {
        ProcessFabricConfig {
            timing: FabricTiming::fast(),
            seed,
            respawn: true,
        }
    }

    #[test]
    fn daemon_speaks_the_protocol_raw() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("raw", 2)).unwrap();
        let mut s = TcpStream::connect(daemon.addr()).unwrap();
        let hello = Frame::read_from(&mut s).unwrap();
        match hello {
            Frame::Hello {
                proto,
                name,
                workers,
                generation,
            } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(name, "raw");
                assert_eq!(workers, 2);
                assert_eq!(generation, 0);
            }
            other => panic!("expected HELLO, got {other:?}"),
        }
        // Stage a blob, dispatch against it, read the result.
        Frame::Transfer {
            key: 5,
            payload: b"hi ".to_vec(),
        }
        .write_to(&mut s)
        .unwrap();
        Frame::Dispatch {
            task: 1,
            attempt: 1,
            function: "echo".to_string(),
            deps: vec![5],
            payload: b"there".to_vec(),
        }
        .write_to(&mut s)
        .unwrap();
        Frame::Heartbeat { seq: 1 }.write_to(&mut s).unwrap();
        let mut saw_result = false;
        let mut saw_hb = false;
        let mut saw_transfer_ack = false;
        for _ in 0..3 {
            match Frame::read_from(&mut s).unwrap() {
                Frame::Result {
                    task,
                    attempt,
                    ok,
                    payload,
                } => {
                    assert_eq!((task, attempt, ok), (1, 1, true));
                    assert_eq!(payload, b"hi there".to_vec());
                    saw_result = true;
                }
                Frame::HeartbeatAck { seq, .. } => {
                    assert_eq!(seq, 1);
                    saw_hb = true;
                }
                Frame::TransferAck { key, stored } => {
                    assert_eq!((key, stored), (5, 3));
                    saw_transfer_ack = true;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(saw_result && saw_hb && saw_transfer_ack);
        Frame::Drain.write_to(&mut s).unwrap();
        assert!(matches!(
            Frame::read_from(&mut s).unwrap(),
            Frame::DrainAck { .. }
        ));
        daemon.join().unwrap();
    }

    #[test]
    fn process_fabric_connect_mode_round_trip() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("ep0", 2)).unwrap();
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "ep0".to_string(),
                workers: 2,
                mode: EndpointMode::Connect {
                    addr: daemon.addr().to_string(),
                },
            }],
            fast_cfg(7),
        );
        assert!(
            fabric.wait_probe(0, ProbeState::Alive, Duration::from_secs(5)),
            "endpoint never came up"
        );
        let blob = Arc::new(b"abc".to_vec());
        fabric.stage(0, 11, &blob);
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("fnv"),
                deps: vec![11],
                payload: b"xyz".to_vec(),
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(
            got,
            crate::fabric::fnv1a64(b"abcxyz").to_le_bytes().to_vec()
        );
        assert!(fabric.counters(0).connects >= 1);
        fabric.shutdown();
        daemon.join().unwrap();
    }

    #[test]
    fn submit_fails_fast_when_unreachable() {
        // Grab an ephemeral port and close the listener: connections are
        // refused, the fabric backs off, submissions fail promptly.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "gone".to_string(),
                workers: 1,
                mode: EndpointMode::Connect {
                    addr: dead.to_string(),
                },
            }],
            fast_cfg(3),
        );
        assert_eq!(fabric.probe(0), ProbeState::Dead);
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![],
                payload: vec![],
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let err = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap_err();
        assert!(err.contains("not connected"), "err = {err}");
        fabric.shutdown();
    }

    #[test]
    fn proxy_cut_mid_frame_then_reconnect() {
        let daemon = spawn_daemon_thread(DaemonConfig::new("prox", 1)).unwrap();
        let proxy = ChaosProxy::start(daemon.addr()).unwrap();
        // Cut after 3 daemon→client bytes: mid-HELLO, guaranteed.
        proxy.cut_after_down_bytes(3);
        let fabric = ProcessFabric::new(
            vec![ProcessEndpointSpec {
                name: "prox".to_string(),
                workers: 1,
                mode: EndpointMode::Connect {
                    addr: proxy.addr().to_string(),
                },
            }],
            fast_cfg(11),
        );
        // First connection dies mid-frame; the reconnect (budget
        // disarmed) completes and work flows.
        assert!(
            fabric.wait_probe(0, ProbeState::Alive, Duration::from_secs(10)),
            "never recovered from mid-frame cut"
        );
        let (tx, rx) = mpsc::channel();
        fabric.submit(
            0,
            JobSpec {
                task: 1,
                attempt: 1,
                function: Arc::from("echo"),
                deps: vec![],
                payload: b"ok".to_vec(),
            },
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap(),
            b"ok".to_vec()
        );
        assert!(fabric.counters(0).connects >= 2, "{:?}", fabric.counters(0));
        fabric.shutdown();
        daemon.join().unwrap();
    }
}
