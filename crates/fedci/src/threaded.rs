//! A real-threads execution fabric.
//!
//! While the discrete-event backend reproduces paper-scale experiments, the
//! *live* runtime executes actual Rust closures on per-endpoint worker
//! thread pools — the same shape as a funcX endpoint's worker processes.
//! Examples and the latency benchmark run on this fabric.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A job returns an optional follow-up that runs *after* the worker is
/// marked idle again — completion callbacks that may inspect pool state
/// (e.g. to place dependent tasks) use this so the finishing worker counts
/// as free, like a funcX worker that reports its result after releasing.
type Followup = Box<dyn FnOnce() + Send + 'static>;
type Job = Box<dyn FnOnce() -> Option<Followup> + Send + 'static>;

/// A pool of worker threads representing one endpoint's workers.
///
/// Each worker executes one job at a time, mirroring the funcX model where
/// each worker process runs a single function invocation.
pub struct ThreadedEndpoint {
    name: String,
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    busy: Arc<AtomicUsize>,
    completed: Arc<AtomicUsize>,
    n_workers: usize,
}

impl ThreadedEndpoint {
    /// Spawns `n_workers` worker threads named after the endpoint.
    pub fn new(name: &str, n_workers: usize) -> Self {
        assert!(n_workers > 0, "an endpoint needs at least one worker");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let busy = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = rx.clone();
            let busy = Arc::clone(&busy);
            let completed = Arc::clone(&completed);
            let handle = std::thread::Builder::new()
                .name(format!("{name}-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        busy.fetch_add(1, Ordering::SeqCst);
                        let followup = job();
                        busy.fetch_sub(1, Ordering::SeqCst);
                        completed.fetch_add(1, Ordering::SeqCst);
                        if let Some(f) = followup {
                            f();
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        ThreadedEndpoint {
            name: name.to_string(),
            tx: Some(tx),
            handles,
            busy,
            completed,
            n_workers,
        }
    }

    /// Endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Workers currently executing a job (racy snapshot, for monitoring).
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::SeqCst)
    }

    /// Total jobs completed so far.
    pub fn completed_jobs(&self) -> usize {
        self.completed.load(Ordering::SeqCst)
    }

    /// Enqueues a job. Jobs are pulled by idle workers in FIFO order.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.submit_then(move || {
            job();
            None
        });
    }

    /// Enqueues a job whose returned follow-up (if any) runs after the
    /// worker has been marked idle.
    pub fn submit_then<F>(&self, job: F)
    where
        F: FnOnce() -> Option<Followup> + Send + 'static,
    {
        self.tx
            .as_ref()
            .expect("endpoint already shut down")
            .send(Box::new(job))
            .expect("worker threads exited unexpectedly");
    }

    /// Drains the queue and joins all workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx); // close the channel; workers exit after draining
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ThreadedEndpoint {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let ep = ThreadedEndpoint::new("test", 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ep.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_in_parallel() {
        let ep = ThreadedEndpoint::new("par", 4);
        let (tx, rx) = unbounded();
        // Four jobs that each wait until all four have started: only
        // possible if they run concurrently.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            let tx = tx.clone();
            ep.submit(move || {
                b.wait();
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(5))
                .expect("jobs deadlocked: pool is not parallel");
        }
        ep.shutdown();
    }

    #[test]
    fn completed_and_busy_counters() {
        let ep = ThreadedEndpoint::new("count", 2);
        assert_eq!(ep.busy_workers(), 0);
        let (tx, rx) = unbounded::<()>();
        let (started_tx, started_rx) = unbounded::<()>();
        ep.submit(move || {
            started_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ep.busy_workers(), 1);
        tx.send(()).unwrap();
        // Wait for completion.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ep.completed_jobs() < 1 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        assert_eq!(ep.busy_workers(), 0);
        assert_eq!(ep.n_workers(), 2);
        assert_eq!(ep.name(), "count");
    }

    #[test]
    fn drop_joins_cleanly() {
        let ep = ThreadedEndpoint::new("drop", 2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(ep); // must drain the queue before joining
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadedEndpoint::new("bad", 0);
    }
}
