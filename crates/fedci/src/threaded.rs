//! A real-threads execution fabric.
//!
//! While the discrete-event backend reproduces paper-scale experiments, the
//! *live* runtime executes actual Rust closures on per-endpoint worker
//! thread pools — the same shape as a funcX endpoint's worker processes.
//! Examples and the latency benchmark run on this fabric.
//!
//! The fabric supports fault injection for chaos testing ([`PoolFaults`]):
//! a pool can be marked down (its liveness probe fails and placement
//! avoids it), made to silently swallow every Nth job (a crashed worker
//! that never reports), or slowed by a fixed delay. The live runtime's
//! retry watchdog is what recovers the swallowed work.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use simkit::metrics::{CounterId, GaugeId, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A job returns an optional follow-up that runs *after* the worker is
/// marked idle again — completion callbacks that may inspect pool state
/// (e.g. to place dependent tasks) use this so the finishing worker counts
/// as free, like a funcX worker that reports its result after releasing.
type Followup = Box<dyn FnOnce() + Send + 'static>;
type Job = Box<dyn FnOnce() -> Option<Followup> + Send + 'static>;

/// How long an idle worker blocks on the queue before re-checking pool
/// state (fault flags, channel closure). The previous implementation
/// blocked indefinitely; this is the configurable poll/shutdown timeout.
pub const DEFAULT_POLL_TIMEOUT: Duration = Duration::from_secs(5);

/// Fault-injection switches for one pool, shared with its workers.
///
/// All switches default to off, in which case the worker loop behaves
/// exactly as a fault-free pool. Deterministic by construction: "crash
/// every Nth job" is countable in tests, unlike a probabilistic coin.
#[derive(Debug, Default)]
pub struct PoolFaults {
    /// Endpoint outage: the liveness probe fails and workers swallow
    /// every job (they crash rather than execute).
    down: AtomicBool,
    /// Swallow every Nth job pulled (0 = never): the worker takes the job
    /// and never runs it or reports back, like a worker process dying
    /// mid-execution.
    crash_every: AtomicUsize,
    /// Fixed extra latency per job, in milliseconds (straggler injection).
    delay_ms: AtomicU64,
    /// Jobs pulled from the queue (crashed or executed).
    jobs_seen: AtomicUsize,
    /// Jobs swallowed by fault injection.
    jobs_crashed: AtomicUsize,
}

impl PoolFaults {
    /// Marks the pool down (or back up).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// True while the pool is marked down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Swallow every `n`th job (0 disables crash injection).
    pub fn set_crash_every(&self, n: usize) {
        self.crash_every.store(n, Ordering::SeqCst);
    }

    /// Adds `delay` of extra latency to every job.
    pub fn set_delay(&self, delay: Duration) {
        self.delay_ms
            .store(delay.as_millis() as u64, Ordering::SeqCst);
    }

    /// Jobs swallowed so far.
    pub fn crashed_jobs(&self) -> usize {
        self.jobs_crashed.load(Ordering::SeqCst)
    }

    /// Decides the fate of the next pulled job. Returns `true` when the
    /// job must be swallowed.
    fn swallows_next(&self) -> bool {
        let n = self.jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let crash_every = self.crash_every.load(Ordering::SeqCst);
        let crash =
            self.down.load(Ordering::SeqCst) || (crash_every > 0 && n.is_multiple_of(crash_every));
        if crash {
            self.jobs_crashed.fetch_add(1, Ordering::SeqCst);
        }
        crash
    }

    fn delay(&self) -> Option<Duration> {
        match self.delay_ms.load(Ordering::SeqCst) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }
}

/// Metric handles for one pool (see [`ThreadedEndpoint::register_metrics`]),
/// plus the counter high-water marks that keep sampled counters monotone.
pub struct PoolMetricIds {
    workers: GaugeId,
    busy: GaugeId,
    up: GaugeId,
    completed: CounterId,
    crashed: CounterId,
    last_completed: u64,
    last_crashed: u64,
}

/// A pool of worker threads representing one endpoint's workers.
///
/// Each worker executes one job at a time, mirroring the funcX model where
/// each worker process runs a single function invocation.
pub struct ThreadedEndpoint {
    name: String,
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    busy: Arc<AtomicUsize>,
    completed: Arc<AtomicUsize>,
    faults: Arc<PoolFaults>,
    n_workers: usize,
}

impl ThreadedEndpoint {
    /// Spawns `n_workers` worker threads named after the endpoint, polling
    /// the queue at [`DEFAULT_POLL_TIMEOUT`].
    pub fn new(name: &str, n_workers: usize) -> Self {
        Self::with_poll_timeout(name, n_workers, DEFAULT_POLL_TIMEOUT)
    }

    /// Like [`ThreadedEndpoint::new`] with an explicit poll timeout: how
    /// long an idle worker blocks before re-checking pool state. Shorter
    /// timeouts make fault-flag changes and shutdown visible faster at the
    /// cost of more wakeups.
    pub fn with_poll_timeout(name: &str, n_workers: usize, poll: Duration) -> Self {
        assert!(n_workers > 0, "an endpoint needs at least one worker");
        assert!(!poll.is_zero(), "poll timeout must be non-zero");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let busy = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        let faults = Arc::new(PoolFaults::default());
        let mut handles = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = rx.clone();
            let busy = Arc::clone(&busy);
            let completed = Arc::clone(&completed);
            let faults = Arc::clone(&faults);
            let handle = std::thread::Builder::new()
                .name(format!("{name}-worker-{i}"))
                .spawn(move || loop {
                    let job = match rx.recv_timeout(poll) {
                        Ok(job) => job,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    };
                    if faults.swallows_next() {
                        // Simulated worker crash: the job (and its
                        // completion callback) is dropped on the floor.
                        // Recovery is the submitter's watchdog's job.
                        drop(job);
                        continue;
                    }
                    if let Some(d) = faults.delay() {
                        std::thread::sleep(d);
                    }
                    busy.fetch_add(1, Ordering::SeqCst);
                    let followup = job();
                    busy.fetch_sub(1, Ordering::SeqCst);
                    completed.fetch_add(1, Ordering::SeqCst);
                    if let Some(f) = followup {
                        f();
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        ThreadedEndpoint {
            name: name.to_string(),
            tx: Some(tx),
            handles,
            busy,
            completed,
            faults,
            n_workers,
        }
    }

    /// Endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Workers currently executing a job (racy snapshot, for monitoring).
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::SeqCst)
    }

    /// Total jobs completed so far.
    pub fn completed_jobs(&self) -> usize {
        self.completed.load(Ordering::SeqCst)
    }

    /// The pool's fault-injection switches (chaos testing).
    pub fn faults(&self) -> &Arc<PoolFaults> {
        &self.faults
    }

    /// Liveness probe: answers whether the endpoint would accept work.
    /// The real-fabric analogue of a heartbeat — a pool marked down stops
    /// answering, and health monitors treat that as a missed probe.
    pub fn responsive(&self) -> bool {
        !self.faults.is_down()
    }

    /// Enqueues a job. Jobs are pulled by idle workers in FIFO order.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.submit_then(move || {
            job();
            None
        });
    }

    /// Enqueues a job whose returned follow-up (if any) runs after the
    /// worker has been marked idle.
    pub fn submit_then<F>(&self, job: F)
    where
        F: FnOnce() -> Option<Followup> + Send + 'static,
    {
        self.tx
            .as_ref()
            .expect("endpoint already shut down")
            .send(Box::new(job))
            .expect("worker threads exited unexpectedly");
    }

    /// Registers this pool's gauge/counter families in `reg`, labelled by
    /// endpoint name. Pair with [`ThreadedEndpoint::sample_metrics`] from a
    /// scrape refresh hook.
    pub fn register_metrics(&self, reg: &mut MetricsRegistry) -> PoolMetricIds {
        let l = &[("endpoint", self.name.as_str())];
        PoolMetricIds {
            workers: reg.gauge("fedci_pool_workers", "Worker threads in the pool.", l),
            busy: reg.gauge(
                "fedci_pool_busy_workers",
                "Workers currently executing a job.",
                l,
            ),
            up: reg.gauge(
                "fedci_pool_up",
                "1 while the pool answers its liveness probe.",
                l,
            ),
            completed: reg.counter(
                "fedci_pool_jobs_completed_total",
                "Jobs executed to completion.",
                l,
            ),
            crashed: reg.counter(
                "fedci_pool_jobs_crashed_total",
                "Jobs swallowed by fault injection.",
                l,
            ),
            last_completed: 0,
            last_crashed: 0,
        }
    }

    /// Snapshots the pool's atomics into `reg`. Counters advance by the
    /// delta since the previous sample (`ids` remembers the high-water
    /// marks), so repeated scrapes stay monotone.
    pub fn sample_metrics(&self, reg: &mut MetricsRegistry, ids: &mut PoolMetricIds) {
        reg.set(ids.workers, self.n_workers as f64);
        reg.set(ids.busy, self.busy_workers() as f64);
        reg.set(ids.up, if self.responsive() { 1.0 } else { 0.0 });
        let completed = self.completed_jobs() as u64;
        reg.inc(
            ids.completed,
            completed.saturating_sub(ids.last_completed) as f64,
        );
        ids.last_completed = completed;
        let crashed = self.faults.crashed_jobs() as u64;
        reg.inc(ids.crashed, crashed.saturating_sub(ids.last_crashed) as f64);
        ids.last_crashed = crashed;
    }

    /// Drains the queue and joins all workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx); // close the channel; workers exit after draining
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ThreadedEndpoint {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let ep = ThreadedEndpoint::new("test", 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ep.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_in_parallel() {
        let ep = ThreadedEndpoint::new("par", 4);
        let (tx, rx) = unbounded();
        // Four jobs that each wait until all four have started: only
        // possible if they run concurrently.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            let tx = tx.clone();
            ep.submit(move || {
                b.wait();
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(DEFAULT_POLL_TIMEOUT)
                .expect("jobs deadlocked: pool is not parallel");
        }
        ep.shutdown();
    }

    #[test]
    fn completed_and_busy_counters() {
        let ep = ThreadedEndpoint::new("count", 2);
        assert_eq!(ep.busy_workers(), 0);
        let (tx, rx) = unbounded::<()>();
        let (started_tx, started_rx) = unbounded::<()>();
        ep.submit(move || {
            started_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        started_rx.recv_timeout(DEFAULT_POLL_TIMEOUT).unwrap();
        assert_eq!(ep.busy_workers(), 1);
        tx.send(()).unwrap();
        // Wait for completion.
        let deadline = std::time::Instant::now() + DEFAULT_POLL_TIMEOUT;
        while ep.completed_jobs() < 1 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        assert_eq!(ep.busy_workers(), 0);
        assert_eq!(ep.n_workers(), 2);
        assert_eq!(ep.name(), "count");
    }

    #[test]
    fn drop_joins_cleanly() {
        let ep = ThreadedEndpoint::new("drop", 2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(ep); // must drain the queue before joining
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadedEndpoint::new("bad", 0);
    }

    #[test]
    fn crash_injection_swallows_every_nth_job() {
        let ep = ThreadedEndpoint::with_poll_timeout("crashy", 1, Duration::from_millis(20));
        ep.faults().set_crash_every(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ep.shutdown();
        // Every 2nd job swallowed: 5 executed, 5 crashed.
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn down_pool_fails_probe_and_eats_jobs() {
        let ep = ThreadedEndpoint::with_poll_timeout("down", 2, Duration::from_millis(20));
        assert!(ep.responsive());
        ep.faults().set_down(true);
        assert!(!ep.responsive());
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Give workers a chance to pull while down.
        let deadline = std::time::Instant::now() + DEFAULT_POLL_TIMEOUT;
        while ep.faults().crashed_jobs() < 4 {
            assert!(std::time::Instant::now() < deadline, "jobs not drained");
            std::thread::yield_now();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        // Restored: new jobs execute again.
        ep.faults().set_down(false);
        let c = Arc::clone(&counter);
        ep.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ep.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_metrics_sample_and_stay_monotone() {
        let ep = ThreadedEndpoint::with_poll_timeout("metered", 2, Duration::from_millis(20));
        let mut reg = MetricsRegistry::new();
        let mut ids = ep.register_metrics(&mut reg);
        ep.sample_metrics(&mut reg, &mut ids);
        let text = reg.render_prometheus();
        assert!(text.contains("fedci_pool_workers{endpoint=\"metered\"} 2"));
        assert!(text.contains("fedci_pool_up{endpoint=\"metered\"} 1"));

        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..6 {
            let c = Arc::clone(&counter);
            ep.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + DEFAULT_POLL_TIMEOUT;
        while ep.completed_jobs() < 6 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        // Two samples in a row: the counter reflects the total exactly
        // once (delta-based sampling, not double-counted).
        ep.sample_metrics(&mut reg, &mut ids);
        ep.sample_metrics(&mut reg, &mut ids);
        let text = reg.render_prometheus();
        assert!(
            text.contains("fedci_pool_jobs_completed_total{endpoint=\"metered\"} 6"),
            "unexpected exposition:\n{text}"
        );
        ep.shutdown();
    }

    #[test]
    fn delay_injection_slows_jobs() {
        let ep = ThreadedEndpoint::with_poll_timeout("slow", 1, Duration::from_millis(20));
        ep.faults().set_delay(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let (tx, rx) = unbounded::<()>();
        ep.submit(move || {
            tx.send(()).unwrap();
        });
        rx.recv_timeout(DEFAULT_POLL_TIMEOUT).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(50));
        ep.shutdown();
    }
}
