//! Wide-area transfer mechanisms.
//!
//! UniFaaS's data manager supports Globus and rsync (§IV-E). The two differ
//! in fixed per-transfer overhead (Globus task submission and checksumming
//! vs. an ssh handshake), sustained throughput efficiency (GridFTP parallel
//! streams vs. a single TCP stream) and sensible concurrency limits. The
//! parameters here were chosen to match the relative behaviour reported for
//! the two tools; absolute values are configurable.

use simkit::SimDuration;

/// Which transfer tool moves the bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransferMechanism {
    /// Globus transfer service: high startup cost (task submission,
    /// integrity checksums) but near-line-rate sustained throughput and
    /// automatic retries — the right choice for large files.
    Globus,
    /// rsync over ssh: cheap startup, but single-stream throughput.
    Rsync,
}

/// Tunable parameters of a transfer mechanism.
#[derive(Clone, Debug)]
pub struct TransferParams {
    /// Fixed per-transfer startup latency.
    pub startup: SimDuration,
    /// Fraction of the link bandwidth the tool can sustain (0, 1].
    pub throughput_efficiency: f64,
    /// Maximum simultaneous transfers per endpoint pair.
    pub max_concurrent: usize,
    /// Per-byte integrity-check overhead factor applied after the wire
    /// time (Globus verifies checksums; rsync does rolling checksums).
    pub checksum_overhead: f64,
}

impl TransferMechanism {
    /// Default parameters for this mechanism.
    pub fn default_params(self) -> TransferParams {
        match self {
            TransferMechanism::Globus => TransferParams {
                startup: SimDuration::from_millis(2_000),
                throughput_efficiency: 0.92,
                max_concurrent: 4,
                checksum_overhead: 0.04,
            },
            TransferMechanism::Rsync => TransferParams {
                startup: SimDuration::from_millis(300),
                throughput_efficiency: 0.55,
                max_concurrent: 8,
                checksum_overhead: 0.02,
            },
        }
    }
}

impl TransferParams {
    /// Wire time for `bytes` over a fair `share_bps` bytes/second slice of
    /// the link, including startup and checksum overhead but *excluding*
    /// propagation latency (the network adds that).
    pub fn duration(&self, bytes: u64, share_bps: f64) -> SimDuration {
        assert!(share_bps > 0.0, "bandwidth share must be positive");
        let wire = bytes as f64 / (share_bps * self.throughput_efficiency);
        self.startup + SimDuration::from_secs_f64(wire * (1.0 + self.checksum_overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globus_beats_rsync_on_large_files() {
        let g = TransferMechanism::Globus.default_params();
        let r = TransferMechanism::Rsync.default_params();
        let bw = 100.0 * 1024.0 * 1024.0; // 100 MiB/s
        let big = 10u64 << 30; // 10 GiB
        assert!(g.duration(big, bw) < r.duration(big, bw));
    }

    #[test]
    fn rsync_beats_globus_on_tiny_files() {
        let g = TransferMechanism::Globus.default_params();
        let r = TransferMechanism::Rsync.default_params();
        let bw = 100.0 * 1024.0 * 1024.0;
        let tiny = 64u64 << 10; // 64 KiB — dominated by startup
        assert!(r.duration(tiny, bw) < g.duration(tiny, bw));
    }

    #[test]
    fn duration_scales_linearly_in_size() {
        let g = TransferMechanism::Globus.default_params();
        let bw = 50.0 * 1024.0 * 1024.0;
        let d1 = g.duration(1 << 30, bw) - g.startup;
        let d2 = g.duration(2 << 30, bw) - g.startup;
        let ratio = d2.as_secs_f64() / d1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn zero_bytes_costs_only_startup() {
        let r = TransferMechanism::Rsync.default_params();
        assert_eq!(r.duration(0, 1e6), r.startup);
    }

    #[test]
    #[should_panic(expected = "bandwidth share")]
    fn zero_bandwidth_panics() {
        TransferMechanism::Globus
            .default_params()
            .duration(100, 0.0);
    }
}
