//! The cloud-hosted FaaS service model (the funcX web service the paper's
//! client talks to).
//!
//! UniFaaS never contacts endpoints directly: tasks are submitted through a
//! cloud service and results come back by polling (§IV-F). The latency
//! experiment (Fig. 5) decomposes a task's lifetime into scheduling,
//! submission, transfer, execution and result-polling stages — the
//! parameters here drive the submission and polling stages.

use simkit::{SimDuration, SimRng};

/// Latency/behaviour parameters of the FaaS fabric.
#[derive(Clone, Debug)]
pub struct FaasServiceModel {
    /// One-way client → service → endpoint dispatch latency (mean).
    pub dispatch_latency: SimDuration,
    /// Jitter fraction on dispatch latency (uniform ±).
    pub dispatch_jitter: f64,
    /// Interval at which the client polls the service for results.
    pub poll_interval: SimDuration,
    /// One-way service → client result latency once a poll observes the
    /// completed task.
    pub result_latency: SimDuration,
    /// Maximum serialized payload routed through the service. The paper
    /// states a hard 10 MB limit — anything larger must travel as a
    /// `RemoteFile` via the data manager.
    pub max_payload_bytes: u64,
    /// Tasks submitted per batched request (client-side batching, §IV-H).
    pub submit_batch_size: usize,
    /// Cadence of endpoint-status synchronization between the mock
    /// endpoints and the service (§IV-B's "synchronizes the mock objects
    /// with the funcX service periodically").
    pub status_sync_interval: SimDuration,
    /// Client-side serialization cost per task submission (wrapping,
    /// serialization, request assembly). The client is a single process, so
    /// this serializes submissions and is what bends the strong-scaling
    /// curves for short tasks (Fig. 6: "a larger number of 1 s tasks suffer
    /// from higher network latency and scheduling overheads").
    pub client_submit_overhead: SimDuration,
}

impl Default for FaasServiceModel {
    fn default() -> Self {
        FaasServiceModel {
            dispatch_latency: SimDuration::from_millis(120),
            dispatch_jitter: 0.25,
            poll_interval: SimDuration::from_millis(500),
            result_latency: SimDuration::from_millis(100),
            max_payload_bytes: 10 * 1024 * 1024,
            submit_batch_size: 64,
            status_sync_interval: SimDuration::from_secs(60),
            client_submit_overhead: SimDuration::from_millis(7),
        }
    }
}

impl FaasServiceModel {
    /// An idealized service with negligible latency, for isolating
    /// scheduler behaviour in unit tests.
    pub fn instant() -> Self {
        FaasServiceModel {
            dispatch_latency: SimDuration::ZERO,
            dispatch_jitter: 0.0,
            poll_interval: SimDuration::from_millis(1),
            result_latency: SimDuration::ZERO,
            client_submit_overhead: SimDuration::ZERO,
            ..Default::default()
        }
    }

    /// Samples a dispatch latency with jitter.
    pub fn sample_dispatch(&self, rng: &mut SimRng) -> SimDuration {
        jittered(self.dispatch_latency, self.dispatch_jitter, rng)
    }

    /// Samples a result-return latency with the same jitter fraction.
    pub fn sample_result(&self, rng: &mut SimRng) -> SimDuration {
        jittered(self.result_latency, self.dispatch_jitter, rng)
    }

    /// Whether a payload of `bytes` may be passed inline through the
    /// service (otherwise it must be a `RemoteFile`).
    pub fn payload_allowed(&self, bytes: u64) -> bool {
        bytes <= self.max_payload_bytes
    }

    /// Expected time from task completion on the endpoint until the client
    /// observes the result: half a poll interval on average plus the result
    /// latency.
    pub fn expected_poll_delay(&self) -> SimDuration {
        self.poll_interval / 2 + self.result_latency
    }
}

fn jittered(base: SimDuration, jitter: f64, rng: &mut SimRng) -> SimDuration {
    if jitter == 0.0 || base.is_zero() {
        return base;
    }
    let factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
    base * factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_limit_is_10mb() {
        let m = FaasServiceModel::default();
        assert!(m.payload_allowed(10 * 1024 * 1024));
        assert!(!m.payload_allowed(10 * 1024 * 1024 + 1));
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = FaasServiceModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let lo = m.dispatch_latency * (1.0 - m.dispatch_jitter);
        let hi = m.dispatch_latency * (1.0 + m.dispatch_jitter);
        for _ in 0..1_000 {
            let d = m.sample_dispatch(&mut rng);
            assert!(d >= lo && d <= hi, "d={d:?}");
        }
    }

    #[test]
    fn instant_model_has_no_latency() {
        let m = FaasServiceModel::instant();
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(m.sample_dispatch(&mut rng), SimDuration::ZERO);
        assert_eq!(m.sample_result(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn expected_poll_delay() {
        let m = FaasServiceModel {
            poll_interval: SimDuration::from_millis(500),
            result_latency: SimDuration::from_millis(100),
            ..Default::default()
        };
        assert_eq!(m.expected_poll_delay(), SimDuration::from_millis(350));
    }
}
