//! Cluster hardware descriptions, with presets for the paper's testbed
//! (Table II).
//!
//! A cluster's *speed factor* scales task execution: a task specified as
//! `compute_seconds` on the reference machine (speed 1.0, calibrated to
//! Qiming) takes `compute_seconds / speed_factor` on a cluster. The paper's
//! DHA scheduler exploits exactly this heterogeneity ("DHA prefers Taiyi, a
//! higher performance cluster", Fig. 11).

/// Hardware description of one cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable name.
    pub name: String,
    /// CPU model string (informational; feeds the execution profiler's
    /// feature vector via `cpu_ghz`).
    pub cpu_model: String,
    /// Base clock of the CPU in GHz.
    pub cpu_ghz: f64,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// RAM per node in GB.
    pub ram_gb: u32,
    /// Number of nodes in the cluster.
    pub nodes: u32,
    /// Relative single-core performance vs. the reference cluster.
    pub speed_factor: f64,
    /// Typical batch-queue wait when requesting additional nodes, seconds.
    /// Big oversubscribed machines (Taiyi) have long queues; lab machines
    /// are immediate. Reproduces the paper's "powerful but long queue times"
    /// vs. "fewer resources but immediately available" trade-off.
    pub provision_delay_s: f64,
}

impl ClusterSpec {
    /// Total cores across the cluster.
    pub fn total_cores(&self) -> u64 {
        self.cores_per_node as u64 * self.nodes as u64
    }

    /// **Taiyi** — 2.5 PF supercomputer (Table II): 2× Xeon Gold 6148
    /// @2.4 GHz, 192 GB, 815 nodes. Newest hardware, longest queue.
    pub fn taiyi() -> Self {
        ClusterSpec {
            name: "Taiyi".into(),
            cpu_model: "2x Xeon Gold 6148".into(),
            cpu_ghz: 2.4,
            cores_per_node: 40,
            ram_gb: 192,
            nodes: 815,
            speed_factor: 1.10,
            provision_delay_s: 90.0,
        }
    }

    /// **Qiming** — 0.3 PF academic supercomputer: 2× Xeon E5-2690
    /// @2.6 GHz, 64 GB, 230 nodes. The reference machine (speed 1.0).
    pub fn qiming() -> Self {
        ClusterSpec {
            name: "Qiming".into(),
            cpu_model: "2x Xeon E5-2690".into(),
            cpu_ghz: 2.6,
            cores_per_node: 16,
            ram_gb: 64,
            nodes: 230,
            speed_factor: 1.00,
            provision_delay_s: 30.0,
        }
    }

    /// **Dept. cluster** — teaching/research cluster: 2× Xeon Platinum 8260
    /// @2.4 GHz, 770 GB, 26 nodes.
    pub fn dept_cluster() -> Self {
        ClusterSpec {
            name: "Dept. cluster".into(),
            cpu_model: "2x Xeon Platinum 8260".into(),
            cpu_ghz: 2.4,
            cores_per_node: 48,
            ram_gb: 770,
            nodes: 26,
            speed_factor: 1.05,
            provision_delay_s: 15.0,
        }
    }

    /// **Lab cluster** — local compute: 2× Xeon Gold 5320 @2.2 GHz, 128 GB,
    /// 2 nodes. Immediately available.
    pub fn lab_cluster() -> Self {
        ClusterSpec {
            name: "Lab cluster".into(),
            cpu_model: "2x Xeon Gold 5320".into(),
            cpu_ghz: 2.2,
            cores_per_node: 26,
            ram_gb: 128,
            nodes: 2,
            speed_factor: 0.95,
            provision_delay_s: 2.0,
        }
    }

    /// **Workstation** — the submitting host: Core i5-9400 @2.9 GHz, 16 GB.
    pub fn workstation() -> Self {
        ClusterSpec {
            name: "Workstation".into(),
            cpu_model: "Core i5-9400".into(),
            cpu_ghz: 2.9,
            cores_per_node: 6,
            ram_gb: 16,
            nodes: 1,
            speed_factor: 0.90,
            provision_delay_s: 0.0,
        }
    }

    /// A uniform synthetic cluster, handy for scalability experiments where
    /// the paper deploys all endpoints on Qiming.
    pub fn uniform(name: &str, speed_factor: f64) -> Self {
        ClusterSpec {
            name: name.into(),
            speed_factor,
            ..Self::qiming()
        }
    }
}

/// The paper's full testbed in Table II order.
pub fn table2_testbed() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::taiyi(),
        ClusterSpec::qiming(),
        ClusterSpec::dept_cluster(),
        ClusterSpec::lab_cluster(),
        ClusterSpec::workstation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let tb = table2_testbed();
        assert_eq!(tb.len(), 5);
        assert_eq!(tb[0].name, "Taiyi");
        assert_eq!(tb[0].nodes, 815);
        assert_eq!(tb[0].ram_gb, 192);
        assert_eq!(tb[1].nodes, 230);
        assert_eq!(tb[2].ram_gb, 770);
        assert_eq!(tb[3].nodes, 2);
        assert_eq!(tb[4].cores_per_node, 6);
    }

    #[test]
    fn taiyi_is_fastest_and_slowest_to_provision() {
        let tb = table2_testbed();
        let taiyi = &tb[0];
        assert!(tb.iter().all(|c| c.speed_factor <= taiyi.speed_factor));
        assert!(tb
            .iter()
            .all(|c| c.provision_delay_s <= taiyi.provision_delay_s));
    }

    #[test]
    fn qiming_is_reference() {
        assert_eq!(ClusterSpec::qiming().speed_factor, 1.0);
    }

    #[test]
    fn total_cores() {
        assert_eq!(ClusterSpec::lab_cluster().total_cores(), 52);
        assert_eq!(ClusterSpec::taiyi().total_cores(), 32_600);
    }

    #[test]
    fn uniform_clone_overrides_speed() {
        let u = ClusterSpec::uniform("ep3", 1.5);
        assert_eq!(u.name, "ep3");
        assert_eq!(u.speed_factor, 1.5);
        assert_eq!(u.cores_per_node, ClusterSpec::qiming().cores_per_node);
    }
}
