//! Property-based tests for the NTP-style clock estimator: under
//! injected skew, slow drift, and adversarially asymmetric path delays,
//! the estimate must stay within its own stated uncertainty of the true
//! offset — the bound is the contract the merged timeline renders.

use fedci::clock::{ClockSample, ClockSync};
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds the sample a heartbeat would produce given the true state of
/// the world: true offset `theta` (daemon minus client, micros), send
/// time `t0`, and the two one-way delays.
fn probe(t0: u64, theta: i64, up_us: u64, down_us: u64) -> ClockSample {
    ClockSample {
        t0_us: t0,
        t_daemon_us: ((t0 + up_us) as i64 + theta) as u64,
        t3_us: t0 + up_us + down_us,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fixed skew, arbitrary per-probe delay asymmetry: the estimator's
    /// error never exceeds its reported uncertainty, and the uncertainty
    /// is exactly half the smallest RTT it saw.
    #[test]
    fn estimate_error_is_bounded_by_stated_uncertainty(
        theta in -1_000_000_000i64..1_000_000_000,
        delays in vec((100u64..50_000, 100u64..50_000), 1..40),
    ) {
        let mut cs = ClockSync::new();
        let mut t0 = 1_000_000_000u64; // past any negative-theta underflow
        let mut min_rtt = u64::MAX;
        for &(up, down) in &delays {
            cs.observe(probe(t0, theta, up, down));
            min_rtt = min_rtt.min(up + down);
            t0 += 100_000;
        }
        let est = cs.estimate().unwrap();
        prop_assert_eq!(est.min_rtt_us, min_rtt);
        prop_assert_eq!(est.uncertainty_us, min_rtt.div_ceil(2));
        prop_assert!(
            (est.offset_us - theta).abs() <= est.uncertainty_us as i64,
            "error {} exceeds bound {} (theta {theta})",
            est.offset_us - theta,
            est.uncertainty_us,
        );
    }

    /// A slowly drifting daemon clock: once a quiet (low-RTT) probe lands
    /// inside the window, the estimate recovers to the *current* offset
    /// within the quiet probe's RTT bound plus whatever drift accrued
    /// over the window.
    #[test]
    fn drift_recovers_within_minimum_rtt_bound(
        theta0 in -1_000_000i64..1_000_000,
        drift_ppm in -200i64..200,
        noise in vec((500u64..20_000, 500u64..20_000), 4..32),
    ) {
        let mut cs = ClockSync::new();
        let mut t0 = 1_000_000_000u64;
        let step = 100_000u64; // 100 ms between probes
        let mut theta = theta0;
        for &(up, down) in &noise {
            cs.observe(probe(t0, theta, up, down));
            t0 += step;
            theta += drift_ppm * step as i64 / 1_000_000;
        }
        // The quiet probe: near-symmetric, lowest RTT by construction.
        cs.observe(probe(t0, theta, 200, 250));
        let est = cs.estimate().unwrap();
        // Drift across the whole window is bounded by ppm * window span.
        let span_us = (noise.len() as i64 + 1) * step as i64;
        let max_drift = (drift_ppm.abs() * span_us) / 1_000_000;
        prop_assert!(
            (est.offset_us - theta).abs() <= est.uncertainty_us as i64 + max_drift,
            "error {} exceeds rtt bound {} + drift bound {max_drift}",
            est.offset_us - theta,
            est.uncertainty_us,
        );
        prop_assert!(est.uncertainty_us <= 225);
    }

    /// Adversarial asymmetry: even when every probe's delay is entirely
    /// one-sided (the worst case NTP admits), the error stays within
    /// rtt/2 — and mapping a daemon stamp back onto the client timeline
    /// inherits the same bound.
    #[test]
    fn one_sided_delay_stays_within_half_rtt(
        theta in -100_000_000i64..100_000_000,
        rtts in vec(200u64..100_000, 1..24),
        upward in (0u16..2).prop_map(|b| b == 1),
    ) {
        let mut cs = ClockSync::new();
        let mut t0 = 1_000_000_000u64;
        for &rtt in &rtts {
            let (up, down) = if upward { (rtt, 0) } else { (0, rtt) };
            cs.observe(probe(t0, theta, up, down));
            t0 += 50_000;
        }
        let est = cs.estimate().unwrap();
        prop_assert!((est.offset_us - theta).abs() <= est.uncertainty_us as i64);
        // Round-trip a daemon timestamp through the mapping: the
        // recovered client time is off by exactly the estimate's error.
        let daemon_stamp = 500_000_000u64;
        let true_client = daemon_stamp as i64 - theta;
        let mapped = est.to_client_us(daemon_stamp);
        prop_assert!((mapped - true_client).abs() <= est.uncertainty_us as i64);
    }
}
