//! Property-based tests for the `fedci::proto` wire codec: arbitrary
//! frames round-trip losslessly, and adversarial inputs — truncations,
//! hostile length headers, random garbage — come back as clean errors,
//! never a panic and never an allocation bigger than the input justifies.

use fedci::proto::{Frame, ProtoError, TelemetryEvent, MAX_FRAME, PROTO_VERSION, TEL_MAX_EVENTS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Any string a u16-length field can carry (kept short for speed).
fn arb_name() -> BoxedStrategy<String> {
    vec(0u8..128, 0..24)
        .prop_map(|bytes| {
            bytes
                .into_iter()
                .map(|b| (b'a' + (b % 26)) as char)
                .collect()
        })
        .boxed()
}

/// A full-range byte (the shim's strategies are exclusive ranges only).
fn arb_byte() -> BoxedStrategy<u8> {
    (0u16..256).prop_map(|b| b as u8).boxed()
}

fn arb_payload() -> BoxedStrategy<Vec<u8>> {
    vec(arb_byte(), 0..200).boxed()
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (0u16..4, arb_name(), 0u32..256, 0u64..10).prop_map(
            |(proto, name, workers, generation)| {
                Frame::Hello {
                    proto,
                    name,
                    workers,
                    generation,
                }
            }
        ),
        (
            0u64..1_000_000,
            0u32..20,
            0u64..10,
            arb_name(),
            vec(0u64..1_000_000, 0..8),
            arb_payload()
        )
            .prop_map(|(task, attempt, generation, function, deps, payload)| {
                Frame::Dispatch {
                    task,
                    attempt,
                    generation,
                    function,
                    deps,
                    payload,
                }
            }),
        (0u64..1_000_000, 0u32..20, 0u64..10, 0u8..2, arb_payload()).prop_map(
            |(task, attempt, generation, ok, payload)| Frame::Result {
                task,
                attempt,
                generation,
                ok: ok == 1,
                payload,
            }
        ),
        Just(Frame::Poll),
        (0u32..64, 0u32..4096, 0u64..1_000_000).prop_map(|(busy, queued, completed)| {
            Frame::PollAck {
                busy,
                queued,
                completed,
            }
        }),
        (0u64..1_000_000, arb_payload())
            .prop_map(|(key, payload)| Frame::Transfer { key, payload }),
        (0u64..1_000_000, 0u64..1_000_000)
            .prop_map(|(key, stored)| Frame::TransferAck { key, stored }),
        (0u64..1_000_000, 0u64..1_000_000_000)
            .prop_map(|(seq, t_client_us)| Frame::Heartbeat { seq, t_client_us }),
        (
            0u64..1_000_000,
            0u32..64,
            0u64..1_000_000_000,
            0u64..1_000_000_000
        )
            .prop_map(
                |(seq, busy, t_client_us, t_daemon_us)| Frame::HeartbeatAck {
                    seq,
                    busy,
                    t_client_us,
                    t_daemon_us,
                }
            ),
        Just(Frame::Drain),
        (0u32..4096).prop_map(|remaining| Frame::DrainAck { remaining }),
        (0u16..4).prop_map(|level| Frame::TelemetrySub { level: level as u8 }),
        (
            0u64..10,
            0u64..1_000_000,
            vec(arb_tel_event(), 0..12),
            vec((0u16..8, 0u64..1_000_000), 0..4),
            vec((-64i64..64, 0u64..1_000_000), 0..6),
        )
            .prop_map(|(generation, seq, events, counters, exec_buckets)| {
                Frame::Telemetry {
                    generation,
                    seq,
                    events,
                    counters,
                    exec_buckets: exec_buckets
                        .into_iter()
                        .map(|(b, c)| (b as i32, c))
                        .collect(),
                }
            }),
    ]
    .boxed()
}

fn arb_tel_event() -> BoxedStrategy<TelemetryEvent> {
    (
        0u16..8,
        0u64..1_000_000_000,
        0u64..1_000_000,
        0u32..20,
        0u64..1_000,
    )
        .prop_map(|(stage, t_us, task, attempt, arg)| TelemetryEvent {
            stage: stage as u8,
            t_us,
            task,
            attempt,
            arg,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(f)) == f, for both the slice and the reader paths.
    #[test]
    fn round_trip_is_lossless(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(&Frame::decode(&bytes).unwrap(), &frame);
        let mut r = std::io::Cursor::new(bytes);
        prop_assert_eq!(&Frame::read_from(&mut r).unwrap(), &frame);
    }

    /// Concatenated frames stream back in order through `read_from`.
    #[test]
    fn streams_preserve_frame_order(frames in vec(arb_frame(), 1..6)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut r = std::io::Cursor::new(stream);
        for f in &frames {
            prop_assert_eq!(&Frame::read_from(&mut r).unwrap(), f);
        }
        prop_assert!(matches!(Frame::read_from(&mut r), Err(ProtoError::Truncated)));
    }

    /// Cutting a valid frame anywhere yields an error, not a panic and
    /// not a bogus decode.
    #[test]
    fn truncation_never_panics(frame in arb_frame(), cut_frac in 0.0f64..1.0) {
        let bytes = frame.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
        let mut r = std::io::Cursor::new(bytes[..cut].to_vec());
        prop_assert!(Frame::read_from(&mut r).is_err());
    }

    /// A hostile length header is rejected as Oversized before any
    /// body-sized allocation happens — from a 4-byte input.
    #[test]
    fn hostile_length_header_rejected(len in (MAX_FRAME + 1)..u32::MAX) {
        let header = len.to_le_bytes();
        prop_assert!(matches!(
            Frame::decode(&header),
            Err(ProtoError::Oversized(_))
        ));
        let mut r = std::io::Cursor::new(header.to_vec());
        prop_assert!(matches!(
            Frame::read_from(&mut r),
            Err(ProtoError::Oversized(_))
        ));
    }

    /// Arbitrary garbage either fails cleanly or decodes to something
    /// that re-encodes to the same bytes (i.e. it happened to be valid).
    #[test]
    fn garbage_decodes_cleanly_or_not_at_all(bytes in vec(arb_byte(), 0..64)) {
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok(frame) => prop_assert_eq!(frame.encode(), bytes),
        }
    }

    /// Corrupting one byte of a valid frame never panics; if it still
    /// decodes, re-encoding reproduces the corrupted bytes (the codec is
    /// a bijection on its valid set).
    #[test]
    fn single_byte_corruption_never_panics(
        frame in arb_frame(),
        pos_frac in 0.0f64..1.0,
        xor in 1u16..256,
    ) {
        let mut bytes = frame.encode();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= xor as u8;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded.encode(), bytes),
        }
    }
}

/// Non-property regression anchors: the exact constants matter on the
/// wire, so pin them.
#[test]
fn wire_constants_are_pinned() {
    // Revision 2: clock-sync timestamps on the heartbeat exchange, span
    // context on DISPATCH/RESULT, TELEMETRY_SUB/TELEMETRY frames.
    assert_eq!(PROTO_VERSION, 2);
    assert_eq!(MAX_FRAME, 16 * 1024 * 1024);
    const { assert!(TEL_MAX_EVENTS >= 1024) };
    // Kind tags are part of the wire contract; renumbering breaks
    // rolling upgrades between daemon and client builds.
    assert_eq!(Frame::Poll.kind(), 4);
    assert_eq!(Frame::Drain.kind(), 10);
    assert_eq!(
        Frame::Heartbeat {
            seq: 0,
            t_client_us: 0
        }
        .kind(),
        8
    );
    assert_eq!(Frame::TelemetrySub { level: 0 }.kind(), 12);
    assert_eq!(
        Frame::Telemetry {
            generation: 0,
            seq: 0,
            events: vec![],
            counters: vec![],
            exec_buckets: vec![],
        }
        .kind(),
        13
    );
}
