//! `unifaas-cli` — run simulated federated workflows from a plain-text
//! experiment spec.
//!
//! The spec format is deliberately dependency-free (one directive per
//! line, `#` comments):
//!
//! ```text
//! # the paper's drug-screening case study at small scale
//! endpoint Taiyi  taiyi  200
//! endpoint Qiming qiming 38 max=100 node=10
//! strategy dha
//! knowledge oracle
//! transfer globus
//! seed 42
//! capacity-event 120 1 +60
//! scaling on idle=30
//! workload drug pipelines=600
//! ```
//!
//! Directives:
//! * `endpoint <label> <cluster> <workers> [max=N] [node=N]` — cluster is
//!   one of `taiyi`, `qiming`, `dept`, `lab`, `workstation`, or
//!   `uniform:<speed>`;
//! * `strategy capacity|locality|dha|dha-no-resched`;
//! * `knowledge oracle|learned`;
//! * `transfer globus|rsync`;
//! * `seed <u64>`, `noise <cv>`;
//! * `faults <transfer_prob> <task_prob>`;
//! * `capacity-event <at_secs> <endpoint_index> <±delta>`;
//! * `scaling on|off [idle=<secs>]`;
//! * `workload drug pipelines=N | montage tiles=N | bag n=N secs=S | ensemble rounds=R batch=B`.

pub mod fabricrun;
pub mod spec;

pub use spec::{parse_spec, RunSpec, SpecError};
