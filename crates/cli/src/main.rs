//! `unifaas-sim` — run a simulated federated workflow from a spec file.
//!
//! ```text
//! unifaas-sim <spec-file> [--strategy capacity|locality|dha|dha-no-resched]
//!                         [--series <dir>] [--quiet] [--report]
//!                         [--trace-out <path>] [--trace-level off|spans|full]
//!                         [--flame-out <path>] [--metrics-out <path>]
//!                         [--metrics-addr <addr>]
//!                         [--task-fail-prob <p>] [--transfer-fail-prob <p>]
//!                         [--outage <ep>:<from-s>:<to-s>]...
//! ```
//!
//! `--strategy` overrides the spec (handy for comparing schedulers on one
//! spec); `--series <dir>` writes the collected time series as CSV files
//! for plotting; `--trace-out <path>` writes a Perfetto/Chrome trace (plus
//! `.jsonl` and `.counters.txt` siblings) — open the JSON at
//! <https://ui.perfetto.dev>. `--trace-level` defaults to `full` when
//! `--trace-out` is given.
//!
//! Observability flags:
//!
//! * `--report` prints the critical-path stage attribution (which latency
//!   stage the makespan was actually spent in, along the longest
//!   dependency chain) and the predictor calibration table. Implies
//!   metrics collection, and span tracing sized to hold every task.
//! * `--metrics-out <path>` writes the final counters/gauges/histograms in
//!   Prometheus text format (one-shot dump; implies metrics collection).
//! * `--flame-out <path>` writes the trace as folded stacks for
//!   `flamegraph.pl`/inferno (implies span tracing).
//! * `--metrics-addr <addr>` serves the final registry at
//!   `GET http://<addr>/metrics` after the run until Ctrl-C, so a scraper
//!   or `curl` can read a finished simulation (implies metrics
//!   collection). Use the live runtime's `serve_metrics` for scraping a
//!   run in progress.
//!
//! The fault knobs override/extend the spec for quick chaos sweeps:
//! `--task-fail-prob` / `--transfer-fail-prob` set the per-attempt failure
//! probabilities, and each `--outage ep:from:to` (seconds, repeatable)
//! schedules a deterministic endpoint outage window.
//!
//! Run-journal flags and subcommands:
//!
//! * `--journal-out <path>` writes a run journal: one binary record per
//!   delivered event plus scheduler decision notes, with rolling chunk
//!   digests (see `simkit::journal`).
//! * `--progress` streams periodic progress snapshots (events/s, queue
//!   occupancy, ready/executing counts, wall-vs-virtual ratio) to stderr
//!   with a stall detector; `--progress-addr <addr>` additionally serves
//!   them live at `GET /metrics` while the run executes.
//! * `--shards <n>` / `--reference-queue` select the engine flavor (for
//!   differential journal runs; digests are identical either way).
//! * `unifaas-sim doctor <a.journal> <b.journal>` compares two journals
//!   and localizes the first divergent event with task/decision context.
//!   Exits 0 when identical, 1 on divergence.
//! * `unifaas-sim journal-perturb <in> <out> <index>` rewrites a journal
//!   with one record's timestamp bumped — an injected divergence for
//!   exercising the doctor end to end.

use simkit::journal::Journal;
use simkit::trace::TraceLevel;
use simkit::{SimDuration, SimTime};
use std::io::Write;
use unifaas::config::SchedulingStrategy;
use unifaas::trace::TraceConfig;
use unifaas::SimRuntime;
use unifaas_cli::parse_spec;

fn usage() -> ! {
    eprintln!(
        "usage: unifaas-sim <spec-file> [--strategy capacity|locality|dha|dha-no-resched] \
         [--series <dir>] [--quiet] [--report] [--trace-out <path>] \
         [--trace-level off|spans|full] [--flame-out <path>] [--metrics-out <path>] \
         [--metrics-addr <addr>] [--task-fail-prob <p>] [--transfer-fail-prob <p>] \
         [--outage <ep>:<from-s>:<to-s>]... [--journal-out <path>] [--progress] \
         [--progress-addr <addr>] [--shards <n>] [--reference-queue]\n\
         \x20      unifaas-sim doctor <a.journal> <b.journal>\n\
         \x20      unifaas-sim journal-perturb <in.journal> <out.journal> <record-index>"
    );
    std::process::exit(2);
}

fn open_journal(path: &str) -> Journal {
    let j = Journal::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open journal {path}: {e}");
        std::process::exit(2);
    });
    if !j.clean_close() {
        eprintln!(
            "warning: {path} was not sealed cleanly; comparing its {} intact records",
            j.total_records()
        );
    }
    j
}

/// `unifaas-sim doctor a.journal b.journal`: exit 0 when identical, 1 on
/// divergence, 2 on usage/open errors.
fn doctor_main(args: &[String]) -> ! {
    let [a, b] = args else {
        eprintln!("usage: unifaas-sim doctor <a.journal> <b.journal>");
        std::process::exit(2);
    };
    let report = unifaas::obs::doctor(&open_journal(a), &open_journal(b));
    print!("{}", unifaas::obs::render_doctor(&report));
    std::process::exit(if report.is_identical() { 0 } else { 1 });
}

/// `unifaas-sim journal-perturb in out index`: injected single-event
/// divergence for exercising the doctor end to end.
fn perturb_main(args: &[String]) -> ! {
    let (src, dst, index) = match args {
        [src, dst, index] => match index.parse::<u64>() {
            Ok(i) => (src, dst, i),
            Err(_) => {
                eprintln!("journal-perturb: record index must be an integer, got `{index}`");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: unifaas-sim journal-perturb <in.journal> <out.journal> <index>");
            std::process::exit(2);
        }
    };
    unifaas::obs::perturb_journal(std::path::Path::new(src), std::path::Path::new(dst), index)
        .unwrap_or_else(|e| {
            eprintln!("journal-perturb: {e}");
            std::process::exit(2);
        });
    println!("wrote {dst} (record {index} timestamp bumped by 1us)");
    std::process::exit(0);
}

/// Parses an `--outage` operand of the form `ep:from:to` (seconds).
fn parse_outage(s: &str) -> Option<(usize, u64, u64)> {
    let mut parts = s.split(':');
    let ep = parts.next()?.parse().ok()?;
    let from = parts.next()?.parse().ok()?;
    let to = parts.next()?.parse().ok()?;
    if parts.next().is_some() || to <= from {
        return None;
    }
    Some((ep, from, to))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("doctor") => doctor_main(&args[1..]),
        Some("journal-perturb") => perturb_main(&args[1..]),
        _ => {}
    }
    let mut spec_path: Option<String> = None;
    let mut strategy_override: Option<SchedulingStrategy> = None;
    let mut series_dir: Option<String> = None;
    let mut quiet = false;
    let mut trace_out: Option<String> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut report_flag = false;
    let mut flame_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut task_fail_prob: Option<f64> = None;
    let mut transfer_fail_prob: Option<f64> = None;
    let mut outages: Vec<(usize, u64, u64)> = Vec::new();
    let mut journal_out: Option<String> = None;
    let mut progress = false;
    let mut progress_addr: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut reference_queue = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--task-fail-prob" => {
                task_fail_prob = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|p| (0.0..=1.0).contains(p))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--transfer-fail-prob" => {
                transfer_fail_prob = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|p| (0.0..=1.0).contains(p))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--outage" => {
                outages.push(
                    it.next()
                        .and_then(|s| parse_outage(s))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--trace-out" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--report" => report_flag = true,
            "--flame-out" => flame_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics-addr" => metrics_addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--trace-level" => {
                trace_level = Some(
                    it.next()
                        .and_then(|s| TraceLevel::parse(s))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--strategy" => {
                strategy_override = Some(match it.next().map(String::as_str) {
                    Some("capacity") => SchedulingStrategy::Capacity,
                    Some("locality") => SchedulingStrategy::Locality,
                    Some("dha") => SchedulingStrategy::Dha { rescheduling: true },
                    Some("dha-no-resched") => SchedulingStrategy::Dha {
                        rescheduling: false,
                    },
                    _ => usage(),
                });
            }
            "--series" => series_dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--journal-out" => journal_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--progress" => progress = true,
            "--progress-addr" => {
                progress_addr = Some(it.next().cloned().unwrap_or_else(|| usage()))
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--reference-queue" => reference_queue = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(spec_path) = spec_path else { usage() };

    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(1);
    });
    let mut spec = parse_spec(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    if let Some(s) = strategy_override {
        spec.config.strategy = s;
    }
    if let Some(p) = task_fail_prob {
        spec.config.task_failure_prob = p;
    }
    if let Some(p) = transfer_fail_prob {
        spec.config.transfer_failure_prob = p;
    }
    for (ep, from, to) in outages {
        if ep >= spec.config.endpoints.len() {
            eprintln!("--outage endpoint {ep} out of range");
            std::process::exit(2);
        }
        spec.config.outages.push(unifaas::config::OutageSpec {
            endpoint: ep,
            from: SimTime::from_secs(from),
            to: SimTime::from_secs(to),
        });
    }
    if let Some(n) = shards {
        spec.config.engine_shards = n;
    }
    if reference_queue {
        spec.config.engine_reference_queue = true;
    }

    let dag = spec.workload.build();
    let n_tasks = dag.len();
    if !quiet {
        println!(
            "running {n_tasks} tasks on {} endpoints...",
            spec.config.endpoints.len()
        );
    }
    // `--trace-out` implies full tracing; `--trace-level` alone records
    // without writing (the trace is still summarized below). `--report`
    // and `--flame-out` need span tracing too — sized so the ring holds
    // every task's lifecycle spans, or critical-path extraction would see
    // a truncated workflow.
    let want_analytics = report_flag || flame_out.is_some();
    let trace_cfg = match (trace_out.is_some(), trace_level) {
        (_, Some(level)) => Some(TraceConfig::at_level(level)),
        (true, None) => Some(TraceConfig::default()),
        (false, None) if want_analytics => Some(TraceConfig::at_level(TraceLevel::Spans)),
        (false, None) => None,
    };
    let trace_cfg = trace_cfg.map(|mut tc| {
        if want_analytics {
            // ~7 lifecycle spans/task, 2 records each, plus transfers.
            tc.ring_capacity = tc.ring_capacity.max(16 * n_tasks.max(1));
        }
        tc
    });
    let want_metrics = report_flag || metrics_out.is_some() || metrics_addr.is_some();
    let t0 = std::time::Instant::now();
    let mut runtime = SimRuntime::new(spec.config, dag).with_metrics(want_metrics);
    if let Some(tc) = trace_cfg {
        runtime = runtime.with_trace(tc);
    }
    if let Some(path) = &journal_out {
        runtime = runtime.with_journal(path);
    }
    if progress || progress_addr.is_some() {
        runtime = runtime.with_flight(unifaas::flight::FlightConfig {
            progress_stderr: progress,
            serve_addr: progress_addr.clone(),
            ..unifaas::flight::FlightConfig::default()
        });
    }
    let report = runtime.run().unwrap_or_else(|e| {
        eprintln!("workflow failed: {e}");
        std::process::exit(1);
    });
    let wall = t0.elapsed();

    if let Some(path) = &trace_out {
        match &report.trace {
            Some(trace) => {
                let written = trace
                    .write_files(std::path::Path::new(path))
                    .unwrap_or_else(|e| {
                        eprintln!("cannot write trace {path}: {e}");
                        std::process::exit(1);
                    });
                for p in written {
                    println!("wrote {}", p.display());
                }
            }
            None => eprintln!("--trace-out given but tracing is off (--trace-level off)"),
        }
    }

    println!("scheduler          {}", report.scheduler);
    println!("tasks completed    {}", report.tasks_completed);
    println!(
        "makespan           {:.1} s (simulated)",
        report.makespan.as_secs_f64()
    );
    println!(
        "transfer           {:.3} GB across endpoints",
        report.transfer_gb()
    );
    println!("failed attempts    {}", report.failed_attempts);
    println!(
        "mean utilization   {:.1}%",
        report.mean_utilization() * 100.0
    );
    println!(
        "scheduler overhead {:.2e} s/task (wall)",
        report.scheduler_overhead_per_task()
    );
    println!("tasks per endpoint:");
    for (label, count) in &report.tasks_per_endpoint {
        if *count > 0 {
            println!("  {label:<16} {count}");
        }
    }
    if let Some(trace) = &report.trace {
        println!(
            "trace              {} events ({} dropped), {} decisions, {} transfers",
            trace.tracer.len(),
            trace.tracer.dropped(),
            trace.decisions.len(),
            trace.transfers.len()
        );
    }
    if let (Some(path), Some(j)) = (&journal_out, &report.journal) {
        println!(
            "journal            {path}: {} records in {} chunks, digest {:#018x}",
            j.records, j.chunks, j.digest
        );
    }
    if let Some(fl) = report.flight.as_deref() {
        if fl.stalls > 0 {
            eprintln!(
                "warning: stall detector fired {} time(s); see the last --progress lines",
                fl.stalls
            );
        }
    }
    if report_flag {
        match report
            .trace
            .as_deref()
            .and_then(unifaas::obs::critical_path)
        {
            Some(cp) => print!("{}", cp.render_table()),
            None => eprintln!("--report: trace has no completed task spans"),
        }
        if report.calibration.is_empty() {
            println!("predictor calibration: no observations");
        } else {
            println!("predictor calibration:");
            println!(
                "  {:<28} {:>7} {:>8} {:>8} {:>9}",
                "model", "n", "MAPE", "bias", "p95|err|"
            );
            for row in &report.calibration {
                println!(
                    "  {:<28} {:>7} {:>7.1}% {:>+7.1}% {:>8.1}%",
                    row.model,
                    row.count,
                    row.mape * 100.0,
                    row.bias * 100.0,
                    row.p95_abs_err * 100.0
                );
            }
        }
    }
    if let Some(path) = &flame_out {
        match report.trace.as_deref() {
            Some(trace) => {
                unifaas::obs::write_flamegraph(trace, std::path::Path::new(path)).unwrap_or_else(
                    |e| {
                        eprintln!("cannot write flamegraph {path}: {e}");
                        std::process::exit(1);
                    },
                );
                println!("wrote {path}");
            }
            None => eprintln!("--flame-out given but tracing is off (--trace-level off)"),
        }
    }
    if let Some(path) = &metrics_out {
        let reg = report
            .metrics
            .as_deref()
            .expect("--metrics-out implies metrics");
        std::fs::write(path, reg.render_prometheus()).unwrap_or_else(|e| {
            eprintln!("cannot write metrics {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    if !quiet {
        println!(
            "({} simulated events in {:.2} s wall)",
            report.events_processed,
            wall.as_secs_f64()
        );
    }

    if let Some(dir) = series_dir {
        std::fs::create_dir_all(&dir).expect("create series dir");
        let end = SimTime::ZERO + report.makespan;
        let step = SimDuration::from_secs_f64((report.makespan.as_secs_f64() / 200.0).max(1.0));
        let sets = [
            ("busy_workers", &report.series.busy_workers),
            ("active_workers", &report.series.active_workers),
            ("pending_tasks", &report.series.pending_tasks),
        ];
        for (name, set) in sets {
            let path = format!("{dir}/{name}.csv");
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
            write!(f, "t_seconds").unwrap();
            for (label, _) in set.iter() {
                write!(f, ",{label}").unwrap();
            }
            writeln!(f).unwrap();
            let mut t = SimTime::ZERO;
            loop {
                write!(f, "{:.1}", t.as_secs_f64()).unwrap();
                for (_, series) in set.iter() {
                    write!(f, ",{}", series.value_at(t)).unwrap();
                }
                writeln!(f).unwrap();
                if t >= end {
                    break;
                }
                t += step;
                if t > end {
                    t = end;
                }
            }
            println!("wrote {path}");
        }
    }

    if let Some(addr) = &metrics_addr {
        let reg = report
            .metrics
            .map(|b| *b)
            .expect("--metrics-addr implies metrics");
        let server = simkit::MetricsServer::start(
            addr,
            std::sync::Arc::new(std::sync::Mutex::new(reg)),
            None,
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "serving final metrics at http://{}/metrics (Ctrl-C to exit)",
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }
}
