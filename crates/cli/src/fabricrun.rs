//! Shared driver for fabric-backed runs: a deterministic layered DAG of
//! byte-level `fnv` tasks plus a digest over the full result vector.
//!
//! Both the `unifaas-fabric` binary and the chaos integration tests use
//! this module, because the headline robustness assertion is *semantic
//! equivalence*: a run that survived SIGKILLs, cut connections, and
//! re-dispatch must produce exactly the per-task results of an unfaulted
//! run. The workload is therefore built to be placement-independent —
//! every task's output is a pure function of the DAG structure and the
//! seed, never of which endpoint ran it or in what order.

use std::sync::Arc;
use unifaas::runtime::fabric::{FabricRuntime, WireFuture};

/// Shape of the layered chained-hash workload.
#[derive(Clone, Copy, Debug)]
pub struct FabricWorkload {
    /// Total task count.
    pub tasks: usize,
    /// Layer width: task `i` depends on `i-1` (chain) and `i-width`
    /// (cross-layer edge), where present. Width > 1 exposes parallelism;
    /// the chain keeps a long critical path so mid-run faults always hit
    /// in-flight work.
    pub width: usize,
    /// Mixed into every task's payload; two runs agree iff seeds agree.
    pub seed: u64,
}

impl FabricWorkload {
    /// A workload of `tasks` tasks with a default width of 4.
    pub fn new(tasks: usize, seed: u64) -> Self {
        FabricWorkload {
            tasks,
            width: 4,
            seed,
        }
    }
}

/// Submits the whole DAG without blocking; returns one future per task,
/// in task order.
pub fn submit_layered(rt: &FabricRuntime, w: &FabricWorkload) -> Vec<WireFuture> {
    let mut futures: Vec<WireFuture> = Vec::with_capacity(w.tasks);
    for i in 0..w.tasks {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&w.seed.to_le_bytes());
        payload.extend_from_slice(&(i as u64).to_le_bytes());
        let mut deps: Vec<&WireFuture> = Vec::with_capacity(2);
        if i >= 1 {
            deps.push(&futures[i - 1]);
        }
        if w.width > 1 && i >= w.width {
            deps.push(&futures[i - w.width]);
        }
        futures.push(rt.submit("fnv", payload, &deps));
    }
    futures
}

/// Collected outcome of one run: per-task results in task order, their
/// digest, and the failure count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Per-task output bytes (or the final error message), task order.
    pub results: Vec<Result<Arc<Vec<u8>>, String>>,
    /// Order-sensitive FNV-1a digest over every task's outcome.
    pub digest: u64,
    /// How many tasks failed permanently.
    pub failures: usize,
}

/// Waits for every future and folds the results into a digest. The
/// digest covers task index, ok/err tag, and the output bytes, so two
/// runs match iff they agree on *every* task's result.
pub fn collect_outcome(futures: &[WireFuture]) -> RunOutcome {
    let mut stream = Vec::with_capacity(futures.len() * 17);
    let mut results = Vec::with_capacity(futures.len());
    let mut failures = 0;
    for (i, f) in futures.iter().enumerate() {
        stream.extend_from_slice(&(i as u64).to_le_bytes());
        match f.wait() {
            Ok(bytes) => {
                stream.push(1);
                stream.extend_from_slice(&bytes);
                results.push(Ok(bytes));
            }
            Err(e) => {
                let msg = e.to_string();
                stream.push(0);
                failures += 1;
                results.push(Err(msg));
            }
        }
    }
    RunOutcome {
        results,
        digest: fedci::fabric::fnv1a64(&stream),
        failures,
    }
}

/// Runs the workload to completion on `rt` and returns the outcome.
pub fn run_workload(rt: &FabricRuntime, w: &FabricWorkload) -> RunOutcome {
    let futures = submit_layered(rt, w);
    rt.wait_all();
    collect_outcome(&futures)
}

/// The expected outcome computed in-process, no fabric involved — the
/// ground truth faulted runs are compared against.
pub fn reference_outcome(w: &FabricWorkload) -> Vec<Vec<u8>> {
    let mut outputs: Vec<Vec<u8>> = Vec::with_capacity(w.tasks);
    for i in 0..w.tasks {
        let mut input = Vec::new();
        if i >= 1 {
            input.extend_from_slice(&outputs[i - 1]);
        }
        if w.width > 1 && i >= w.width {
            input.extend_from_slice(&outputs[i - w.width]);
        }
        input.extend_from_slice(&w.seed.to_le_bytes());
        input.extend_from_slice(&(i as u64).to_le_bytes());
        outputs.push(fedci::fabric::fnv1a64(&input).to_le_bytes().to_vec());
    }
    outputs
}

/// Locates the sibling `unifaas-endpointd` binary next to the running
/// executable (the layout `cargo` produces for both `target/debug` and
/// integration-test runs, where test binaries live one level deeper).
pub fn default_daemon_path() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("unifaas-endpointd{}", std::env::consts::EXE_SUFFIX);
    for dir in exe.ancestors().skip(1).take(3) {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedci::fabric::{FabricTiming, ThreadedFabric};

    #[test]
    fn reference_matches_threaded_run() {
        let w = FabricWorkload::new(40, 7);
        let fabric = Arc::new(ThreadedFabric::new(
            &[("a", 2), ("b", 2)],
            &FabricTiming::fast(),
        ));
        let rt = FabricRuntime::new(fabric);
        let outcome = run_workload(&rt, &w);
        assert_eq!(outcome.failures, 0);
        let want = reference_outcome(&w);
        for (i, (got, want)) in outcome.results.iter().zip(&want).enumerate() {
            assert_eq!(
                got.as_ref().unwrap().as_slice(),
                want.as_slice(),
                "task {i}"
            );
        }
    }

    #[test]
    fn digest_is_seed_and_shape_sensitive() {
        let fabric = Arc::new(ThreadedFabric::new(&[("a", 2)], &FabricTiming::fast()));
        let rt = FabricRuntime::new(fabric);
        let a = run_workload(&rt, &FabricWorkload::new(10, 1));
        let b = run_workload(&rt, &FabricWorkload::new(10, 2));
        assert_ne!(a.digest, b.digest);
    }
}
