//! `unifaas-fabric` — run a deterministic layered DAG on a live fabric
//! backend and report the result digest plus recovery statistics.
//!
//! ```text
//! unifaas-fabric [--backend threaded|process] [--endpoints a:4,b:4]
//!                [--tasks <n>] [--width <w>] [--seed <s>]
//!                [--daemon <path-to-unifaas-endpointd>]
//!                [--chaos-kill <ep>:<after-k-completions>]...
//!                [--chaos-swallow-every <k>] [--chaos-delay-ms <ms>]
//!                [--max-attempts <n>] [--task-timeout-ms <ms>]
//!                [--fast-timing] [--report]
//!                [--trace-out <path>] [--trace-level off|spans|full]
//!                [--metrics-out <path>] [--metrics-addr <addr>]
//! ```
//!
//! With `--backend process` each endpoint is a spawned
//! `unifaas-endpointd` child speaking the length-prefixed TCP protocol;
//! `--chaos-kill ep:k` SIGKILLs endpoint `ep`'s child once `k` tasks have
//! completed (repeatable), and the supervisor's heartbeat/reconnect/
//! re-dispatch machinery is expected to carry the run to the same digest
//! an unfaulted run produces. `--chaos-swallow-every` / `--chaos-delay-ms`
//! pass the daemons' own fault injectors through, so the injected instants
//! show up in the merged timeline.
//!
//! Observability flags:
//!
//! * `--trace-out <path>` writes the *merged cross-process* Perfetto
//!   timeline: the client's `c.*` lifecycle events plus (process backend)
//!   every daemon's telemetry, offset-corrected onto the client clock via
//!   the heartbeat NTP estimator, one track per daemon generation labelled
//!   with its offset ± uncertainty. Implies tracing and (process backend)
//!   the telemetry subscription. Open at <https://ui.perfetto.dev>.
//! * `--trace-level` sets the client recording level (defaults to `spans`
//!   when `--trace-out` is given).
//! * `--metrics-out <path>` (process backend) writes the final
//!   `fedci_proc_*` / `fedci_wire_*` registry in Prometheus text format.
//! * `--metrics-addr <addr>` (process backend) serves the registry at
//!   `GET http://<addr>/metrics` *during* the run, re-sampled per scrape.
//!
//! The final line is machine-readable:
//!
//! ```text
//! digest=0x<16 hex> tasks=<n> failures=<n> retries=<n> ...
//! ```

use fedci::fabric::{Fabric, FabricTiming, ThreadedFabric};
use fedci::process::{EndpointMode, ProcessEndpointSpec, ProcessFabric, ProcessFabricConfig};
use simkit::metrics::MetricsRegistry;
use simkit::TraceLevel;
use std::sync::Arc;
use std::time::Duration;
use unifaas::runtime::fabric::FabricRuntime;
use unifaas::runtime::live::LiveRetryPolicy;
use unifaas_cli::fabricrun::{
    collect_outcome, default_daemon_path, submit_layered, FabricWorkload,
};

fn usage() -> ! {
    eprintln!(
        "usage: unifaas-fabric [--backend threaded|process] [--endpoints a:4,b:4] \
         [--tasks <n>] [--width <w>] [--seed <s>] [--daemon <path>] \
         [--chaos-kill <ep>:<after-k>]... [--chaos-swallow-every <k>] \
         [--chaos-delay-ms <ms>] [--max-attempts <n>] \
         [--task-timeout-ms <ms>] [--fast-timing] [--report] \
         [--trace-out <path>] [--trace-level off|spans|full] \
         [--metrics-out <path>] [--metrics-addr <addr>]"
    );
    std::process::exit(2);
}

fn need(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| {
        eprintln!("unifaas-fabric: {flag} needs a value");
        usage();
    })
}

fn parse<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("unifaas-fabric: bad value `{v}` for {flag}");
        usage();
    })
}

/// `a:4,b:4` → `[("a", 4), ("b", 4)]`.
fn parse_endpoints(s: &str) -> Vec<(String, usize)> {
    s.split(',')
        .map(|part| {
            let Some((name, workers)) = part.split_once(':') else {
                eprintln!("unifaas-fabric: bad endpoint `{part}` (want name:workers)");
                usage();
            };
            (name.to_string(), parse("--endpoints", workers))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut backend = String::from("threaded");
    let mut endpoints = vec![("a".to_string(), 4), ("b".to_string(), 4)];
    let mut tasks = 200usize;
    let mut width = 4usize;
    let mut seed = 42u64;
    let mut daemon: Option<String> = None;
    let mut kills: Vec<(usize, u64)> = Vec::new();
    let mut max_attempts = 5u32;
    let mut task_timeout_ms = 0u64;
    let mut fast_timing = false;
    let mut report = false;
    let mut trace_out: Option<String> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut chaos_swallow_every = 0u64;
    let mut chaos_delay_ms = 0u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => backend = need("--backend", args.next()),
            "--endpoints" => endpoints = parse_endpoints(&need("--endpoints", args.next())),
            "--tasks" => tasks = parse("--tasks", &need("--tasks", args.next())),
            "--width" => width = parse("--width", &need("--width", args.next())),
            "--seed" => seed = parse("--seed", &need("--seed", args.next())),
            "--daemon" => daemon = Some(need("--daemon", args.next())),
            "--chaos-kill" => {
                let v = need("--chaos-kill", args.next());
                let Some((ep, after)) = v.split_once(':') else {
                    eprintln!("unifaas-fabric: bad --chaos-kill `{v}` (want ep:after-k)");
                    usage();
                };
                kills.push((parse("--chaos-kill", ep), parse("--chaos-kill", after)));
            }
            "--max-attempts" => {
                max_attempts = parse("--max-attempts", &need("--max-attempts", args.next()))
            }
            "--task-timeout-ms" => {
                task_timeout_ms =
                    parse("--task-timeout-ms", &need("--task-timeout-ms", args.next()))
            }
            "--chaos-swallow-every" => {
                chaos_swallow_every = parse(
                    "--chaos-swallow-every",
                    &need("--chaos-swallow-every", args.next()),
                )
            }
            "--chaos-delay-ms" => {
                chaos_delay_ms = parse("--chaos-delay-ms", &need("--chaos-delay-ms", args.next()))
            }
            "--fast-timing" => fast_timing = true,
            "--report" => report = true,
            "--trace-out" => trace_out = Some(need("--trace-out", args.next())),
            "--trace-level" => {
                let v = need("--trace-level", args.next());
                trace_level = Some(TraceLevel::parse(&v).unwrap_or_else(|| {
                    eprintln!("unifaas-fabric: bad value `{v}` for --trace-level");
                    usage();
                }));
            }
            "--metrics-out" => metrics_out = Some(need("--metrics-out", args.next())),
            "--metrics-addr" => metrics_addr = Some(need("--metrics-addr", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unifaas-fabric: unknown flag `{other}`");
                usage();
            }
        }
    }
    if tasks == 0 || endpoints.is_empty() {
        eprintln!("unifaas-fabric: need at least one task and one endpoint");
        usage();
    }

    let timing = if fast_timing {
        FabricTiming::fast()
    } else {
        FabricTiming::default()
    };
    // Process runs default to a watchdog: a SIGKILLed endpoint swallows
    // in-flight work, and only a timeout (or the connection-loss
    // fail-over) brings it back.
    let timeout = match (task_timeout_ms, backend.as_str()) {
        (0, "process") => Some(Duration::from_secs(10)),
        (0, _) => None,
        (ms, _) => Some(Duration::from_millis(ms)),
    };
    let policy = LiveRetryPolicy {
        max_attempts,
        task_timeout: timeout,
        backoff: Duration::from_millis(if fast_timing { 5 } else { 50 }),
    };
    // `--trace-out` implies span tracing; `--trace-level` alone records
    // without writing. The telemetry subscription (process backend) rides
    // on the same switch: no tracing, no TELEMETRY frames on the wire.
    let level = trace_level.unwrap_or(if trace_out.is_some() {
        TraceLevel::Spans
    } else {
        TraceLevel::Off
    });
    let tracing = level != TraceLevel::Off;

    let (fabric, proc_fabric): (Arc<dyn Fabric>, Option<Arc<ProcessFabric>>) = match backend
        .as_str()
    {
        "threaded" => {
            if !kills.is_empty() || chaos_swallow_every > 0 || chaos_delay_ms > 0 {
                eprintln!("unifaas-fabric: --chaos-* flags need --backend process");
                usage();
            }
            if metrics_out.is_some() || metrics_addr.is_some() {
                eprintln!("unifaas-fabric: --metrics-out/--metrics-addr need --backend process");
                usage();
            }
            let eps: Vec<(&str, usize)> = endpoints.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            (Arc::new(ThreadedFabric::new(&eps, &timing)), None)
        }
        "process" => {
            let daemon_path =
                daemon.or_else(|| default_daemon_path().map(|p| p.to_string_lossy().into_owned()));
            let Some(daemon_path) = daemon_path else {
                eprintln!("unifaas-fabric: cannot locate unifaas-endpointd; pass --daemon <path>");
                std::process::exit(2);
            };
            // Daemon-side chaos rides the spawn command, so respawned
            // generations inject the same faults.
            let mut command = vec![daemon_path.clone()];
            if chaos_swallow_every > 0 {
                command.push("--chaos-swallow-every".to_string());
                command.push(chaos_swallow_every.to_string());
            }
            if chaos_delay_ms > 0 {
                command.push("--chaos-delay-ms".to_string());
                command.push(chaos_delay_ms.to_string());
            }
            let specs: Vec<ProcessEndpointSpec> = endpoints
                .iter()
                .map(|(name, workers)| ProcessEndpointSpec {
                    name: name.clone(),
                    workers: *workers,
                    mode: EndpointMode::Spawn {
                        command: command.clone(),
                    },
                })
                .collect();
            let cfg = ProcessFabricConfig {
                timing,
                seed,
                respawn: true,
                telemetry: tracing,
            };
            let pf = Arc::new(ProcessFabric::new(specs, cfg));
            (Arc::clone(&pf) as Arc<dyn Fabric>, Some(pf))
        }
        other => {
            eprintln!("unifaas-fabric: unknown backend `{other}`");
            usage();
        }
    };
    for (ep, _) in &kills {
        if *ep >= endpoints.len() {
            eprintln!("unifaas-fabric: --chaos-kill endpoint {ep} out of range");
            std::process::exit(2);
        }
    }

    let rt = Arc::new(
        FabricRuntime::new(Arc::clone(&fabric))
            .with_retry(policy)
            .with_trace(level),
    );

    // The metrics registry is shared with the scrape server (when one is
    // up); every scrape re-samples the fabric under the registry lock.
    let metrics = (metrics_out.is_some() || metrics_addr.is_some()).then(|| {
        let pf = proc_fabric.as_ref().expect("checked above").clone();
        let mut reg = MetricsRegistry::new();
        let ids = pf.register_metrics(&mut reg);
        (
            std::sync::Arc::new(std::sync::Mutex::new(reg)),
            std::sync::Arc::new(std::sync::Mutex::new(ids)),
        )
    });
    let _server = metrics_addr.as_ref().map(|addr| {
        let (reg, ids) = metrics.as_ref().expect("metrics set up").clone();
        let pf = proc_fabric.as_ref().expect("checked above").clone();
        let server = simkit::MetricsServer::start(
            addr,
            reg,
            Some(Box::new(move |r: &mut MetricsRegistry| {
                pf.sample_metrics(r, &mut ids.lock().expect("ids lock"));
            })),
        )
        .unwrap_or_else(|e| {
            eprintln!("unifaas-fabric: cannot serve metrics at {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("serving metrics at http://{}/metrics", server.local_addr());
        server
    });

    let workload = FabricWorkload { tasks, width, seed };
    let started = std::time::Instant::now();
    let futures = submit_layered(&rt, &workload);

    // The chaos scheduler: fire each kill once its completion threshold
    // passes. Polling stats() is deliberate — it observes the run exactly
    // like an external chaos agent would.
    let killer = proc_fabric.as_ref().map(|pf| {
        let pf = Arc::clone(pf);
        let rt = Arc::clone(&rt);
        let mut kills = kills.clone();
        kills.sort_by_key(|&(_, after)| after);
        std::thread::spawn(move || {
            while !kills.is_empty() {
                let completed = rt.stats().completed;
                while let Some(&(ep, after)) = kills.first() {
                    if completed >= after {
                        eprintln!("chaos: SIGKILL endpoint {ep} after {completed} completions");
                        pf.kill(ep);
                        kills.remove(0);
                    } else {
                        break;
                    }
                }
                if rt.stats().completed as usize >= tasks {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    });

    rt.wait_all();
    let outcome = collect_outcome(&futures);
    if let Some(k) = killer {
        let _ = k.join();
    }
    let wall = started.elapsed();
    let stats = rt.stats();

    if report {
        eprintln!(
            "backend={backend} endpoints={} tasks={tasks} width={width} wall={wall:?}",
            endpoints.len()
        );
        if let Some(pf) = &proc_fabric {
            for (i, (name, _)) in endpoints.iter().enumerate() {
                let c = pf.counters(i);
                eprintln!(
                    "endpoint {i} ({name}): generation={} connects={} respawns={} \
                     failovers={} stale_results={}",
                    pf.generation(i),
                    c.connects,
                    c.respawns,
                    c.failovers,
                    c.stale_results
                );
            }
        }
    }
    // Shutdown drains the daemons — the DRAIN-triggered final telemetry
    // flush lands before the supervisors exit, so the harvest below sees
    // the complete event stream.
    let client_tracer = rt.take_client_tracer();
    fabric.shutdown();

    if trace_out.is_some() || metrics_out.is_some() {
        let telemetry: Vec<fedci::process::EndpointTelemetry> = proc_fabric
            .as_ref()
            .map(|pf| (0..endpoints.len()).map(|i| pf.telemetry(i)).collect())
            .unwrap_or_default();
        if let Some(path) = &trace_out {
            let merged = unifaas::obs::merge_process_timeline(client_tracer.as_ref(), &telemetry);
            let chains = unifaas::obs::attempt_chains(client_tracer.as_ref(), &telemetry);
            // Generous slack on top of each chain's clock uncertainty:
            // the stamps bracket queueing, not just the wire.
            let violations = unifaas::obs::causal_violations(&chains, 5_000);
            let complete = chains.iter().filter(|c| c.is_complete()).count();
            let truncated = chains.iter().filter(|c| c.is_truncated()).count();
            eprintln!(
                "trace: {} attempts ({complete} complete, {truncated} truncated), \
                 {} causal violations",
                chains.len(),
                violations.len()
            );
            for v in &violations {
                eprintln!("trace: violation: {v}");
            }
            let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("unifaas-fabric: cannot create {path}: {e}");
                std::process::exit(1);
            });
            merged.export_perfetto(&mut f).unwrap_or_else(|e| {
                eprintln!("unifaas-fabric: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        if let Some(path) = &metrics_out {
            let (reg, ids) = metrics.as_ref().expect("metrics set up");
            let pf = proc_fabric.as_ref().expect("checked above");
            let mut reg = reg.lock().expect("registry lock");
            pf.sample_metrics(&mut reg, &mut ids.lock().expect("ids lock"));
            std::fs::write(path, reg.render_prometheus()).unwrap_or_else(|e| {
                eprintln!("unifaas-fabric: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
    }

    println!(
        "digest={:#018x} tasks={tasks} failures={} dispatched={} retries={} \
         watchdog_timeouts={}",
        outcome.digest, outcome.failures, stats.dispatched, stats.retries, stats.watchdog_timeouts
    );
    std::process::exit(if outcome.failures == 0 { 0 } else { 1 });
}
