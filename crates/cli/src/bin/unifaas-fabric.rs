//! `unifaas-fabric` — run a deterministic layered DAG on a live fabric
//! backend and report the result digest plus recovery statistics.
//!
//! ```text
//! unifaas-fabric [--backend threaded|process] [--endpoints a:4,b:4]
//!                [--tasks <n>] [--width <w>] [--seed <s>]
//!                [--daemon <path-to-unifaas-endpointd>]
//!                [--chaos-kill <ep>:<after-k-completions>]...
//!                [--max-attempts <n>] [--task-timeout-ms <ms>]
//!                [--fast-timing] [--report]
//! ```
//!
//! With `--backend process` each endpoint is a spawned
//! `unifaas-endpointd` child speaking the length-prefixed TCP protocol;
//! `--chaos-kill ep:k` SIGKILLs endpoint `ep`'s child once `k` tasks have
//! completed (repeatable), and the supervisor's heartbeat/reconnect/
//! re-dispatch machinery is expected to carry the run to the same digest
//! an unfaulted run produces. The final line is machine-readable:
//!
//! ```text
//! digest=0x<16 hex> tasks=<n> failures=<n> retries=<n> ...
//! ```

use fedci::fabric::{Fabric, FabricTiming, ThreadedFabric};
use fedci::process::{EndpointMode, ProcessEndpointSpec, ProcessFabric, ProcessFabricConfig};
use std::sync::Arc;
use std::time::Duration;
use unifaas::runtime::fabric::FabricRuntime;
use unifaas::runtime::live::LiveRetryPolicy;
use unifaas_cli::fabricrun::{
    collect_outcome, default_daemon_path, submit_layered, FabricWorkload,
};

fn usage() -> ! {
    eprintln!(
        "usage: unifaas-fabric [--backend threaded|process] [--endpoints a:4,b:4] \
         [--tasks <n>] [--width <w>] [--seed <s>] [--daemon <path>] \
         [--chaos-kill <ep>:<after-k>]... [--max-attempts <n>] \
         [--task-timeout-ms <ms>] [--fast-timing] [--report]"
    );
    std::process::exit(2);
}

fn need(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| {
        eprintln!("unifaas-fabric: {flag} needs a value");
        usage();
    })
}

fn parse<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("unifaas-fabric: bad value `{v}` for {flag}");
        usage();
    })
}

/// `a:4,b:4` → `[("a", 4), ("b", 4)]`.
fn parse_endpoints(s: &str) -> Vec<(String, usize)> {
    s.split(',')
        .map(|part| {
            let Some((name, workers)) = part.split_once(':') else {
                eprintln!("unifaas-fabric: bad endpoint `{part}` (want name:workers)");
                usage();
            };
            (name.to_string(), parse("--endpoints", workers))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut backend = String::from("threaded");
    let mut endpoints = vec![("a".to_string(), 4), ("b".to_string(), 4)];
    let mut tasks = 200usize;
    let mut width = 4usize;
    let mut seed = 42u64;
    let mut daemon: Option<String> = None;
    let mut kills: Vec<(usize, u64)> = Vec::new();
    let mut max_attempts = 5u32;
    let mut task_timeout_ms = 0u64;
    let mut fast_timing = false;
    let mut report = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => backend = need("--backend", args.next()),
            "--endpoints" => endpoints = parse_endpoints(&need("--endpoints", args.next())),
            "--tasks" => tasks = parse("--tasks", &need("--tasks", args.next())),
            "--width" => width = parse("--width", &need("--width", args.next())),
            "--seed" => seed = parse("--seed", &need("--seed", args.next())),
            "--daemon" => daemon = Some(need("--daemon", args.next())),
            "--chaos-kill" => {
                let v = need("--chaos-kill", args.next());
                let Some((ep, after)) = v.split_once(':') else {
                    eprintln!("unifaas-fabric: bad --chaos-kill `{v}` (want ep:after-k)");
                    usage();
                };
                kills.push((parse("--chaos-kill", ep), parse("--chaos-kill", after)));
            }
            "--max-attempts" => {
                max_attempts = parse("--max-attempts", &need("--max-attempts", args.next()))
            }
            "--task-timeout-ms" => {
                task_timeout_ms =
                    parse("--task-timeout-ms", &need("--task-timeout-ms", args.next()))
            }
            "--fast-timing" => fast_timing = true,
            "--report" => report = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unifaas-fabric: unknown flag `{other}`");
                usage();
            }
        }
    }
    if tasks == 0 || endpoints.is_empty() {
        eprintln!("unifaas-fabric: need at least one task and one endpoint");
        usage();
    }

    let timing = if fast_timing {
        FabricTiming::fast()
    } else {
        FabricTiming::default()
    };
    // Process runs default to a watchdog: a SIGKILLed endpoint swallows
    // in-flight work, and only a timeout (or the connection-loss
    // fail-over) brings it back.
    let timeout = match (task_timeout_ms, backend.as_str()) {
        (0, "process") => Some(Duration::from_secs(10)),
        (0, _) => None,
        (ms, _) => Some(Duration::from_millis(ms)),
    };
    let policy = LiveRetryPolicy {
        max_attempts,
        task_timeout: timeout,
        backoff: Duration::from_millis(if fast_timing { 5 } else { 50 }),
    };

    let (fabric, proc_fabric): (Arc<dyn Fabric>, Option<Arc<ProcessFabric>>) = match backend
        .as_str()
    {
        "threaded" => {
            if !kills.is_empty() {
                eprintln!("unifaas-fabric: --chaos-kill needs --backend process");
                usage();
            }
            let eps: Vec<(&str, usize)> = endpoints.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            (Arc::new(ThreadedFabric::new(&eps, &timing)), None)
        }
        "process" => {
            let daemon_path =
                daemon.or_else(|| default_daemon_path().map(|p| p.to_string_lossy().into_owned()));
            let Some(daemon_path) = daemon_path else {
                eprintln!("unifaas-fabric: cannot locate unifaas-endpointd; pass --daemon <path>");
                std::process::exit(2);
            };
            let specs: Vec<ProcessEndpointSpec> = endpoints
                .iter()
                .map(|(name, workers)| ProcessEndpointSpec {
                    name: name.clone(),
                    workers: *workers,
                    mode: EndpointMode::Spawn {
                        command: vec![daemon_path.clone()],
                    },
                })
                .collect();
            let cfg = ProcessFabricConfig {
                timing,
                seed,
                respawn: true,
            };
            let pf = Arc::new(ProcessFabric::new(specs, cfg));
            (Arc::clone(&pf) as Arc<dyn Fabric>, Some(pf))
        }
        other => {
            eprintln!("unifaas-fabric: unknown backend `{other}`");
            usage();
        }
    };
    for (ep, _) in &kills {
        if *ep >= endpoints.len() {
            eprintln!("unifaas-fabric: --chaos-kill endpoint {ep} out of range");
            std::process::exit(2);
        }
    }

    let rt = Arc::new(FabricRuntime::new(Arc::clone(&fabric)).with_retry(policy));
    let workload = FabricWorkload { tasks, width, seed };
    let started = std::time::Instant::now();
    let futures = submit_layered(&rt, &workload);

    // The chaos scheduler: fire each kill once its completion threshold
    // passes. Polling stats() is deliberate — it observes the run exactly
    // like an external chaos agent would.
    let killer = proc_fabric.as_ref().map(|pf| {
        let pf = Arc::clone(pf);
        let rt = Arc::clone(&rt);
        let mut kills = kills.clone();
        kills.sort_by_key(|&(_, after)| after);
        std::thread::spawn(move || {
            while !kills.is_empty() {
                let completed = rt.stats().completed;
                while let Some(&(ep, after)) = kills.first() {
                    if completed >= after {
                        eprintln!("chaos: SIGKILL endpoint {ep} after {completed} completions");
                        pf.kill(ep);
                        kills.remove(0);
                    } else {
                        break;
                    }
                }
                if rt.stats().completed as usize >= tasks {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    });

    rt.wait_all();
    let outcome = collect_outcome(&futures);
    if let Some(k) = killer {
        let _ = k.join();
    }
    let wall = started.elapsed();
    let stats = rt.stats();

    if report {
        eprintln!(
            "backend={backend} endpoints={} tasks={tasks} width={width} wall={wall:?}",
            endpoints.len()
        );
        if let Some(pf) = &proc_fabric {
            for (i, (name, _)) in endpoints.iter().enumerate() {
                let c = pf.counters(i);
                eprintln!(
                    "endpoint {i} ({name}): generation={} connects={} respawns={} \
                     failovers={} stale_results={}",
                    pf.generation(i),
                    c.connects,
                    c.respawns,
                    c.failovers,
                    c.stale_results
                );
            }
        }
    }
    println!(
        "digest={:#018x} tasks={tasks} failures={} dispatched={} retries={} \
         watchdog_timeouts={}",
        outcome.digest, outcome.failures, stats.dispatched, stats.retries, stats.watchdog_timeouts
    );
    fabric.shutdown();
    std::process::exit(if outcome.failures == 0 { 0 } else { 1 });
}
