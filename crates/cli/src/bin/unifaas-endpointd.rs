//! `unifaas-endpointd` — a process-isolated endpoint daemon.
//!
//! ```text
//! unifaas-endpointd [--name <label>] [--workers <n>] [--listen <addr>]
//!                   [--generation <g>] [--telemetry-ring <events>]
//!                   [--chaos-swallow-every <k>] [--chaos-delay-ms <ms>]
//!                   [--chaos-dup-results]
//! ```
//!
//! The daemon binds a TCP listener, prints `LISTENING <addr>` on stdout
//! (the handshake its supervisor parses — `--listen 127.0.0.1:0` lets the
//! OS pick a free port), then serves the `fedci::proto` frame protocol:
//! DISPATCH jobs run on `--workers` threads over the builtin byte-level
//! function registry, TRANSFER frames stage input blobs, HEARTBEATs are
//! acked with current busy count (plus a local-clock stamp feeding the
//! client's offset estimator), and DRAIN flushes and exits. When a client
//! subscribes with TELEMETRY_SUB, per-attempt trace events accumulate in
//! a bounded ring (`--telemetry-ring` events, drop-oldest) and ship as
//! TELEMETRY batches behind every heartbeat ack.
//!
//! The `--chaos-*` flags are for crash/fault testing only: swallow every
//! k-th job without replying (a hung worker), delay every execution (a
//! straggler), or send every RESULT twice (a duplicating network). The
//! chaos tests in `crates/cli/tests` drive these — and plain `kill -9` —
//! to prove the client's exactly-once machinery holds against real
//! process failures.

use fedci::process::{run_daemon, DaemonChaos, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: unifaas-endpointd [--name <label>] [--workers <n>] [--listen <addr>] \
         [--generation <g>] [--telemetry-ring <events>] [--chaos-swallow-every <k>] \
         [--chaos-delay-ms <ms>] [--chaos-dup-results]"
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("unifaas-endpointd: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("unifaas-endpointd: bad value `{v}` for {flag}");
        usage();
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = DaemonConfig::new("endpoint", 2);
    let mut chaos = DaemonChaos::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--name" => cfg.name = parse_or_usage("--name", args.next()),
            "--workers" => cfg.workers = parse_or_usage("--workers", args.next()),
            "--listen" => cfg.listen = parse_or_usage("--listen", args.next()),
            "--generation" => cfg.generation = parse_or_usage("--generation", args.next()),
            "--telemetry-ring" => {
                cfg.telemetry_ring = parse_or_usage("--telemetry-ring", args.next())
            }
            "--chaos-swallow-every" => {
                chaos.swallow_every = parse_or_usage("--chaos-swallow-every", args.next())
            }
            "--chaos-delay-ms" => chaos.delay_ms = parse_or_usage("--chaos-delay-ms", args.next()),
            "--chaos-dup-results" => chaos.dup_results = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unifaas-endpointd: unknown flag `{other}`");
                usage();
            }
        }
    }
    cfg.chaos = chaos;
    let name = cfg.name.clone();
    if let Err(e) = run_daemon(cfg, |addr| {
        // The supervisor reads this exact line to learn the bound port.
        println!("{}{addr}", fedci::process::LISTENING_PREFIX);
    }) {
        eprintln!("unifaas-endpointd[{name}]: {e}");
        std::process::exit(1);
    }
}
