//! The experiment-spec parser (line-oriented, no external dependencies).

use fedci::hardware::ClusterSpec;
use fedci::transfer::TransferMechanism;
use simkit::SimDuration;
use taskgraph::workloads::{drug, ensemble, montage, stress};
use taskgraph::Dag;
use unifaas::config::{Config, ConfigBuilder, KnowledgeMode, ScalingConfig, SchedulingStrategy};
use unifaas::prelude::EndpointConfig;

/// A parse failure, with the offending line number.
#[derive(Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Which workload the spec requests.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Drug-screening pipelines.
    Drug {
        /// Pipelines (tasks = 1 + 4 × pipelines).
        pipelines: usize,
    },
    /// Montage mosaic.
    Montage {
        /// Tiles (tasks = 5 × tiles + 6 with the default overlap ratio).
        tiles: usize,
    },
    /// Bag of independent stress tasks.
    Bag {
        /// Task count.
        n: usize,
        /// Seconds per task.
        secs: f64,
    },
    /// ML-steered simulation ensemble.
    Ensemble {
        /// Steering rounds.
        rounds: usize,
        /// Simulations per round.
        batch: usize,
    },
}

impl WorkloadSpec {
    /// Builds the DAG for this workload.
    pub fn build(&self) -> Dag {
        match self {
            WorkloadSpec::Drug { pipelines } => {
                drug::generate(&drug::DrugParams::small(*pipelines))
            }
            WorkloadSpec::Montage { tiles } => {
                montage::generate(&montage::MontageParams::small(*tiles))
            }
            WorkloadSpec::Bag { n, secs } => stress::bag_of_tasks(*n, *secs),
            WorkloadSpec::Ensemble { rounds, batch } => {
                ensemble::generate(&ensemble::EnsembleParams {
                    rounds: *rounds,
                    batch: *batch,
                    ..Default::default()
                })
            }
        }
    }
}

/// A fully parsed experiment.
#[derive(Debug)]
pub struct RunSpec {
    /// The deployment configuration.
    pub config: Config,
    /// The workload to run.
    pub workload: WorkloadSpec,
}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn cluster_by_name(name: &str, line: usize) -> Result<ClusterSpec, SpecError> {
    if let Some(speed) = name.strip_prefix("uniform:") {
        let speed: f64 = speed
            .parse()
            .map_err(|_| err(line, format!("bad uniform speed `{speed}`")))?;
        return Ok(ClusterSpec::uniform("uniform", speed));
    }
    Ok(match name {
        "taiyi" => ClusterSpec::taiyi(),
        "qiming" => ClusterSpec::qiming(),
        "dept" => ClusterSpec::dept_cluster(),
        "lab" => ClusterSpec::lab_cluster(),
        "workstation" => ClusterSpec::workstation(),
        other => return Err(err(line, format!("unknown cluster `{other}`"))),
    })
}

fn kv<'a>(tokens: &'a [&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Parses an experiment spec.
pub fn parse_spec(text: &str) -> Result<RunSpec, SpecError> {
    let mut builder: ConfigBuilder = Config::builder();
    let mut workload: Option<WorkloadSpec> = None;
    let mut scaling: Option<ScalingConfig> = None;
    let mut any_endpoint = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "endpoint" => {
                if tokens.len() < 4 {
                    return Err(err(line_no, "endpoint needs: <label> <cluster> <workers>"));
                }
                let label = tokens[1];
                let cluster = cluster_by_name(tokens[2], line_no)?;
                let workers: usize = tokens[3]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad worker count `{}`", tokens[3])))?;
                let mut ep = EndpointConfig::new(label, cluster, workers);
                if let Some(max) = kv(&tokens, "max") {
                    let max: usize = max
                        .parse()
                        .map_err(|_| err(line_no, format!("bad max `{max}`")))?;
                    let node = kv(&tokens, "node")
                        .map(|n| n.parse::<usize>())
                        .transpose()
                        .map_err(|_| err(line_no, "bad node size"))?
                        .unwrap_or(workers.max(1));
                    if max < workers {
                        return Err(err(line_no, "max must be >= workers"));
                    }
                    ep = ep.elastic(workers, max, node);
                }
                builder = builder.endpoint(ep);
                any_endpoint = true;
            }
            "strategy" => {
                let strategy = match tokens.get(1).copied() {
                    Some("capacity") => SchedulingStrategy::Capacity,
                    Some("locality") => SchedulingStrategy::Locality,
                    Some("dha") => SchedulingStrategy::Dha { rescheduling: true },
                    Some("dha-no-resched") => SchedulingStrategy::Dha {
                        rescheduling: false,
                    },
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown strategy `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                builder = builder.strategy(strategy);
            }
            "knowledge" => {
                let k = match tokens.get(1).copied() {
                    Some("oracle") => KnowledgeMode::Oracle,
                    Some("learned") => KnowledgeMode::Learned,
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown knowledge mode `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                builder = builder.knowledge(k);
            }
            "transfer" => {
                let t = match tokens.get(1).copied() {
                    Some("globus") => TransferMechanism::Globus,
                    Some("rsync") => TransferMechanism::Rsync,
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown transfer mechanism `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                builder = builder.transfer(t);
            }
            "seed" => {
                let seed: u64 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "seed needs a u64"))?;
                builder = builder.seed(seed);
            }
            "noise" => {
                let cv: f64 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "noise needs a float cv"))?;
                builder = builder.exec_noise_cv(cv);
            }
            "faults" => {
                let xfer: f64 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "faults needs two probabilities"))?;
                let task: f64 = tokens
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "faults needs two probabilities"))?;
                builder = builder.faults(xfer, task);
            }
            "outage" => {
                let ep: usize = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "outage needs <ep> <from-s> <to-s>"))?;
                let from: u64 = tokens
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "outage needs <ep> <from-s> <to-s>"))?;
                let to: u64 = tokens
                    .get(3)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "outage needs <ep> <from-s> <to-s>"))?;
                if to <= from {
                    return Err(err(line_no, "outage window must end after it starts"));
                }
                builder = builder.outage(ep, from, to);
            }
            "capacity-event" => {
                let at: u64 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "capacity-event needs <at> <ep> <delta>"))?;
                let ep: usize = tokens
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "capacity-event needs <at> <ep> <delta>"))?;
                let delta: i64 = tokens
                    .get(3)
                    .and_then(|s| s.trim_start_matches('+').parse().ok())
                    .ok_or_else(|| err(line_no, "capacity-event needs <at> <ep> <delta>"))?;
                builder = builder.capacity_event(at, ep, delta);
            }
            "scaling" => {
                let enabled = match tokens.get(1).copied() {
                    Some("on") => true,
                    Some("off") => false,
                    other => {
                        return Err(err(
                            line_no,
                            format!("scaling needs on|off, got `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                let idle = kv(&tokens, "idle")
                    .map(|v| v.parse::<u64>())
                    .transpose()
                    .map_err(|_| err(line_no, "bad idle seconds"))?
                    .unwrap_or(30);
                scaling = Some(ScalingConfig {
                    enabled,
                    idle_timeout: SimDuration::from_secs(idle),
                    interval: SimDuration::from_secs(1),
                    policy: unifaas::config::ScalingPolicyKind::Default,
                });
            }
            "workload" => {
                let w = match tokens.get(1).copied() {
                    Some("drug") => WorkloadSpec::Drug {
                        pipelines: kv(&tokens, "pipelines")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload drug needs pipelines=N"))?,
                    },
                    Some("montage") => WorkloadSpec::Montage {
                        tiles: kv(&tokens, "tiles")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload montage needs tiles=N"))?,
                    },
                    Some("bag") => WorkloadSpec::Bag {
                        n: kv(&tokens, "n")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload bag needs n=N"))?,
                        secs: kv(&tokens, "secs")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload bag needs secs=S"))?,
                    },
                    Some("ensemble") => WorkloadSpec::Ensemble {
                        rounds: kv(&tokens, "rounds")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload ensemble needs rounds=N"))?,
                        batch: kv(&tokens, "batch")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line_no, "workload ensemble needs batch=N"))?,
                    },
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown workload `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                workload = Some(w);
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    if !any_endpoint {
        return Err(err(0, "spec declares no endpoints"));
    }
    let workload = workload.ok_or_else(|| err(0, "spec declares no workload"))?;
    let mut config = builder.build();
    if let Some(s) = scaling {
        config.scaling = s;
    }
    Ok(RunSpec { config, workload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    const GOOD: &str = "\
# comment
endpoint Taiyi taiyi 200          # trailing comment
endpoint Lab   lab   8 max=40 node=8
strategy dha
knowledge learned
transfer rsync
seed 7
noise 0.05
faults 0.1 0.05
outage 1 100 200
capacity-event 120 0 -50
scaling on idle=20
workload drug pipelines=10
";

    #[test]
    fn parses_full_spec() {
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(spec.config.endpoints.len(), 3); // + implicit home
        assert_eq!(spec.config.endpoints[0].label, "Taiyi");
        assert_eq!(spec.config.endpoints[1].max_workers, 40);
        assert_eq!(spec.config.endpoints[1].workers_per_node, 8);
        assert_eq!(
            spec.config.strategy,
            SchedulingStrategy::Dha { rescheduling: true }
        );
        assert_eq!(spec.config.knowledge, KnowledgeMode::Learned);
        assert_eq!(spec.config.transfer, TransferMechanism::Rsync);
        assert_eq!(spec.config.seed, 7);
        assert_eq!(spec.config.exec_noise_cv, 0.05);
        assert_eq!(spec.config.transfer_failure_prob, 0.1);
        assert_eq!(spec.config.outages.len(), 1);
        assert_eq!(spec.config.outages[0].endpoint, 1);
        assert_eq!(spec.config.outages[0].from, SimTime::from_secs(100));
        assert_eq!(spec.config.outages[0].to, SimTime::from_secs(200));
        assert_eq!(spec.config.capacity_events.len(), 1);
        assert_eq!(spec.config.capacity_events[0].delta, -50);
        assert!(spec.config.scaling.enabled);
        assert_eq!(spec.config.scaling.idle_timeout, SimDuration::from_secs(20));
        assert_eq!(spec.workload, WorkloadSpec::Drug { pipelines: 10 });
        assert_eq!(spec.workload.build().len(), 41);
    }

    #[test]
    fn uniform_cluster_and_bag_workload() {
        let spec = parse_spec("endpoint a uniform:1.5 4\nworkload bag n=20 secs=3.5\n").unwrap();
        assert_eq!(spec.config.endpoints[0].cluster.speed_factor, 1.5);
        assert_eq!(spec.workload.build().len(), 20);
    }

    #[test]
    fn montage_workload_builds() {
        let spec = parse_spec("endpoint a qiming 4\nworkload montage tiles=10\n").unwrap();
        assert_eq!(spec.workload, WorkloadSpec::Montage { tiles: 10 });
        assert_eq!(spec.workload.build().len(), 56);
    }

    #[test]
    fn ensemble_workload_builds() {
        let spec = parse_spec(
            "endpoint a qiming 4
workload ensemble rounds=3 batch=5
",
        )
        .unwrap();
        assert_eq!(
            spec.workload,
            WorkloadSpec::Ensemble {
                rounds: 3,
                batch: 5
            }
        );
        assert_eq!(spec.workload.build().len(), 18);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_spec("endpoint a qiming 4\nbogus directive\nworkload bag n=1 secs=1\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn missing_workload_is_an_error() {
        let e = parse_spec("endpoint a qiming 4\n").unwrap_err();
        assert!(e.message.contains("no workload"));
    }

    #[test]
    fn missing_endpoints_is_an_error() {
        let e = parse_spec("workload bag n=1 secs=1\n").unwrap_err();
        assert!(e.message.contains("no endpoints"));
    }

    #[test]
    fn bad_cluster_and_bad_numbers() {
        assert!(parse_spec("endpoint a nebula 4\nworkload bag n=1 secs=1\n").is_err());
        assert!(parse_spec("endpoint a qiming four\nworkload bag n=1 secs=1\n").is_err());
        assert!(parse_spec("endpoint a qiming 4 max=2\nworkload bag n=1 secs=1\n").is_err());
        assert!(parse_spec("endpoint a qiming 4\nworkload drug\n").is_err());
        // Outage windows must be well-formed.
        assert!(
            parse_spec("endpoint a qiming 4\noutage 0 200 100\nworkload bag n=1 secs=1\n").is_err()
        );
        assert!(parse_spec("endpoint a qiming 4\noutage 0 50\nworkload bag n=1 secs=1\n").is_err());
    }

    #[test]
    fn parsed_spec_actually_runs() {
        let spec = parse_spec(
            "endpoint a qiming 8\nendpoint b taiyi 8\nstrategy locality\nworkload bag n=30 secs=5\n",
        )
        .unwrap();
        let report = unifaas::SimRuntime::new(spec.config, spec.workload.build())
            .run()
            .unwrap();
        assert_eq!(report.tasks_completed, 30);
    }
}
