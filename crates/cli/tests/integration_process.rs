//! Chaos integration tests for the process fabric: real child daemons,
//! real SIGKILLs, real half-open sockets. The invariant under every
//! fault is the same — the run completes with no task lost and no task
//! double-resolved, and every per-task result equals the unfaulted
//! in-process reference.

use fedci::fabric::{Fabric, FabricTiming, ProbeState, ThreadedFabric};
use fedci::process::{
    spawn_daemon_thread, ChaosProxy, DaemonChaos, DaemonConfig, EndpointMode, ProcessEndpointSpec,
    ProcessFabric, ProcessFabricConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unifaas::runtime::fabric::FabricRuntime;
use unifaas::runtime::live::LiveRetryPolicy;
use unifaas_cli::fabricrun::{
    collect_outcome, reference_outcome, run_workload, submit_layered, FabricWorkload,
};

fn daemon_bin() -> String {
    env!("CARGO_BIN_EXE_unifaas-endpointd").to_string()
}

fn spawn_spec(name: &str, workers: usize) -> ProcessEndpointSpec {
    ProcessEndpointSpec {
        name: name.to_string(),
        workers,
        mode: EndpointMode::Spawn {
            command: vec![daemon_bin()],
        },
    }
}

fn fast_cfg(seed: u64) -> ProcessFabricConfig {
    ProcessFabricConfig {
        timing: FabricTiming::fast(),
        seed,
        respawn: true,
        telemetry: false,
    }
}

/// Generous budgets for debug builds: the watchdog is a correctness
/// backstop here, not a latency target.
fn retry_policy() -> LiveRetryPolicy {
    LiveRetryPolicy {
        max_attempts: 6,
        task_timeout: Some(Duration::from_secs(5)),
        backoff: Duration::from_millis(5),
    }
}

fn assert_matches_reference(outcome: &unifaas_cli::fabricrun::RunOutcome, w: &FabricWorkload) {
    assert_eq!(outcome.failures, 0, "tasks failed: {:?}", outcome.results);
    let want = reference_outcome(w);
    assert_eq!(outcome.results.len(), want.len(), "task lost or duplicated");
    for (i, (got, want)) in outcome.results.iter().zip(&want).enumerate() {
        assert_eq!(
            got.as_ref().unwrap().as_slice(),
            want.as_slice(),
            "task {i} diverged from the unfaulted reference"
        );
    }
}

/// Waits until `completed` crosses `k` (so a kill lands mid-run, with
/// work genuinely in flight).
fn wait_completions(rt: &FabricRuntime, k: u64, budget: Duration) {
    let start = Instant::now();
    while rt.stats().completed < k {
        assert!(
            start.elapsed() < budget,
            "only {} completions after {budget:?}",
            rt.stats().completed
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn threaded_and_process_backends_agree_bit_for_bit() {
    let w = FabricWorkload::new(60, 1234);
    let threaded = {
        let fabric = Arc::new(ThreadedFabric::new(
            &[("a", 2), ("b", 2)],
            &FabricTiming::fast(),
        ));
        let rt = FabricRuntime::new(fabric);
        run_workload(&rt, &w)
    };
    let process = {
        let fabric = Arc::new(ProcessFabric::new(
            vec![spawn_spec("a", 2), spawn_spec("b", 2)],
            fast_cfg(1),
        ));
        let rt =
            FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());
        let out = run_workload(&rt, &w);
        fabric.shutdown();
        out
    };
    assert_eq!(threaded.digest, process.digest);
    assert_matches_reference(&process, &w);
}

#[test]
fn sigkill_mid_run_respawns_and_loses_nothing() {
    let w = FabricWorkload::new(120, 77);
    let fabric = Arc::new(ProcessFabric::new(
        vec![spawn_spec("victim", 2), spawn_spec("peer", 2)],
        fast_cfg(2),
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());
    let futures = submit_layered(&rt, &w);
    // Let the run get going, then SIGKILL the victim's child process —
    // its in-flight dispatches die with it.
    wait_completions(&rt, 20, Duration::from_secs(30));
    fabric.kill(0);
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert_matches_reference(&outcome, &w);

    let c = fabric.counters(0);
    assert!(c.respawns >= 1, "victim was never respawned: {c:?}");
    assert!(
        fabric.generation(0) >= 1,
        "respawned daemon must carry a new generation"
    );
    // The kill either failed over in-flight work (connection died with
    // dispatches outstanding) or the watchdog caught it; both surface as
    // retries when anything was in flight.
    fabric.shutdown();
}

#[test]
fn repeated_sigkills_of_both_endpoints_still_converge() {
    let w = FabricWorkload::new(150, 9);
    let fabric = Arc::new(ProcessFabric::new(
        vec![spawn_spec("a", 2), spawn_spec("b", 2)],
        fast_cfg(3),
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());
    let futures = submit_layered(&rt, &w);
    for (k, ep) in [(15u64, 0usize), (40, 1), (70, 0)] {
        wait_completions(&rt, k, Duration::from_secs(60));
        fabric.kill(ep);
    }
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert_matches_reference(&outcome, &w);
    assert!(fabric.counters(0).respawns >= 1);
    assert!(fabric.counters(1).respawns >= 1);
    fabric.shutdown();
}

#[test]
fn mid_frame_socket_cut_reconnects_and_completes() {
    // Daemon runs in-thread; the client connects through a byte-counting
    // proxy that severs the connection three bytes into a frame.
    let daemon = spawn_daemon_thread(DaemonConfig::new("proxied", 2)).expect("daemon");
    let proxy = ChaosProxy::start(daemon.addr()).expect("proxy");
    let fabric = Arc::new(ProcessFabric::new(
        vec![ProcessEndpointSpec {
            name: "proxied".to_string(),
            workers: 2,
            mode: EndpointMode::Connect {
                addr: proxy.addr().to_string(),
            },
        }],
        fast_cfg(4),
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());

    let w = FabricWorkload::new(40, 5);
    let futures = submit_layered(&rt, &w);
    wait_completions(&rt, 5, Duration::from_secs(30));
    // Arm a mid-frame cut: the next RESULT/ack frame dies 3 bytes in
    // (inside the length header), leaving a half-delivered frame.
    proxy.cut_after_down_bytes(3);
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert_matches_reference(&outcome, &w);
    assert!(
        fabric.counters(0).connects >= 2,
        "expected a reconnect after the cut: {:?}",
        fabric.counters(0)
    );
    fabric.shutdown();
    drop(proxy);
    let _ = daemon; // dropped (detached) after shutdown drained it
}

#[test]
fn stalled_connection_fails_over_and_replayed_results_are_dropped_stale() {
    // Two endpoints: "slow" executes with a delay, so cutting its
    // connection mid-run strands completed RESULTs in the daemon outbox.
    // They replay on reconnect — after the client has already failed the
    // attempts over — and must be dropped as stale, not double-resolved.
    let slow_daemon = spawn_daemon_thread(DaemonConfig {
        chaos: DaemonChaos {
            delay_ms: 60,
            ..DaemonChaos::default()
        },
        ..DaemonConfig::new("slow", 2)
    })
    .expect("daemon");
    let proxy = ChaosProxy::start(slow_daemon.addr()).expect("proxy");
    let fabric = Arc::new(ProcessFabric::new(
        vec![
            ProcessEndpointSpec {
                name: "slow".to_string(),
                workers: 2,
                mode: EndpointMode::Connect {
                    addr: proxy.addr().to_string(),
                },
            },
            spawn_spec("fast", 2),
        ],
        fast_cfg(5),
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());

    let w = FabricWorkload {
        tasks: 60,
        width: 6,
        seed: 11,
    };
    let futures = submit_layered(&rt, &w);
    // Wait until the slow endpoint has work in flight, then cut. Its
    // workers keep executing into the outbox while disconnected.
    wait_completions(&rt, 4, Duration::from_secs(30));
    proxy.cut_now();
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert_matches_reference(&outcome, &w);

    let c = fabric.counters(0);
    assert!(
        c.failovers >= 1,
        "cut connection should have failed over in-flight work: {c:?}"
    );
    // Give the replayed outbox a beat to arrive, then check it was
    // ignored. (The replay may also have raced `wait_all`, which is
    // fine — the counter is monotone.)
    let deadline = Instant::now() + Duration::from_secs(5);
    while fabric.counters(0).stale_results == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        fabric.counters(0).stale_results >= 1,
        "replayed RESULTs for failed-over attempts must be counted stale: {:?}",
        fabric.counters(0)
    );
    fabric.shutdown();
}

#[test]
fn duplicated_results_resolve_each_task_exactly_once() {
    // A daemon that sends every RESULT twice: the second copy no longer
    // matches an outstanding (task, attempt) and must be dropped.
    let daemon = spawn_daemon_thread(DaemonConfig {
        chaos: DaemonChaos {
            dup_results: true,
            ..DaemonChaos::default()
        },
        ..DaemonConfig::new("dup", 2)
    })
    .expect("daemon");
    let fabric = Arc::new(ProcessFabric::new(
        vec![ProcessEndpointSpec {
            name: "dup".to_string(),
            workers: 2,
            mode: EndpointMode::Connect {
                addr: daemon.addr().to_string(),
            },
        }],
        fast_cfg(6),
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(retry_policy());
    let w = FabricWorkload::new(30, 21);
    let outcome = run_workload(&rt, &w);
    assert_matches_reference(&outcome, &w);
    assert_eq!(rt.stats().completed as usize, w.tasks);
    // Count duplicates only after shutdown: the drain exchange is
    // in-order, so by the time the DRAIN ack lands the reader has
    // consumed every duplicate RESULT still in flight (the last task's
    // second copy can otherwise race this assertion).
    fabric.shutdown();
    let c = fabric.counters(0);
    assert!(
        c.stale_results as usize >= w.tasks,
        "every duplicate should be dropped stale: {c:?}"
    );
}

#[test]
fn sigkill_timeline_spans_generations_and_shows_truncated_attempts() {
    // The crash-lab run with the observability plane on: SIGKILL the
    // victim mid-run, then demand one merged timeline that shows the
    // whole story — pre-kill attempts on generation 0 (some truncated:
    // received/executing but never resulted), the respawn gap, and
    // post-respawn retries on generation 1, all offset-corrected.
    let w = FabricWorkload::new(120, 31);
    let chaos_cmd = vec![
        daemon_bin(),
        "--chaos-delay-ms".to_string(),
        "25".to_string(),
    ];
    let fabric = Arc::new(ProcessFabric::new(
        vec![
            ProcessEndpointSpec {
                name: "victim".to_string(),
                workers: 2,
                mode: EndpointMode::Spawn { command: chaos_cmd },
            },
            spawn_spec("peer", 2),
        ],
        ProcessFabricConfig {
            telemetry: true,
            ..fast_cfg(8)
        },
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>)
        .with_retry(retry_policy())
        .with_trace(simkit::TraceLevel::Spans);
    let futures = submit_layered(&rt, &w);
    wait_completions(&rt, 20, Duration::from_secs(30));
    fabric.kill(0);
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert_matches_reference(&outcome, &w);
    assert!(fabric.counters(0).respawns >= 1);

    let client = rt.take_client_tracer().expect("tracing enabled");
    fabric.shutdown();
    let telemetry: Vec<_> = (0..2).map(|i| fabric.telemetry(i)).collect();

    // Both the killed generation and its successor shipped events.
    let victim_gens: std::collections::BTreeSet<u64> =
        telemetry[0].events.iter().map(|&(g, _)| g).collect();
    assert!(
        victim_gens.contains(&0) && victim_gens.iter().any(|&g| g >= 1),
        "need events from before and after the respawn: {victim_gens:?}"
    );
    // Every surviving generation synced its clock.
    for &(g, est) in &telemetry[0].clocks {
        assert!(est.samples >= 1, "gen {g} never synced");
    }

    let chains = unifaas::obs::attempt_chains(Some(&client), &telemetry);
    assert!(
        chains.iter().any(|c| c.is_truncated()),
        "the kill (or its chaos delay) should leave truncated attempts"
    );
    // Every task shows up on the client timeline; most also have a fully
    // joined chain. (A kill can eat daemon-side stamps that were still in
    // the ring — exact completeness is only guaranteed without faults.)
    let tasks_seen: std::collections::BTreeSet<u64> = chains
        .iter()
        .filter(|c| c.c_dispatch_us.is_some())
        .map(|c| c.task)
        .collect();
    assert_eq!(tasks_seen.len(), w.tasks, "client side covers every task");
    assert!(
        chains.iter().filter(|c| c.is_complete()).count() >= w.tasks / 2,
        "the bulk of attempts still join end to end"
    );
    let violations = unifaas::obs::causal_violations(&chains, 10_000);
    assert!(violations.is_empty(), "{violations:?}");

    // The merged Perfetto timeline renders the generation gap and the
    // injected chaos instants.
    let merged = unifaas::obs::merge_process_timeline(Some(&client), &telemetry);
    let mut buf = Vec::new();
    merged.export_perfetto(&mut buf).unwrap();
    let json = String::from_utf8(buf).unwrap();
    assert!(json.contains("victim gen0"), "pre-kill track present");
    assert!(json.contains("victim gen1"), "post-respawn track present");
    assert!(json.contains("d.chaos.delay"), "chaos instants visible");
}

#[test]
fn chaos_swallow_instants_are_assertable_in_the_merged_timeline() {
    // A daemon that swallows every 5th job: the swallow instant must be
    // visible in the merged timeline at an explicit (task, attempt), and
    // every swallowed attempt shows up as a truncated chain.
    let daemon = spawn_daemon_thread(DaemonConfig {
        chaos: DaemonChaos {
            swallow_every: 5,
            ..DaemonChaos::default()
        },
        ..DaemonConfig::new("swallower", 2)
    })
    .expect("daemon");
    let fabric = Arc::new(ProcessFabric::new(
        vec![ProcessEndpointSpec {
            name: "swallower".to_string(),
            workers: 2,
            mode: EndpointMode::Connect {
                addr: daemon.addr().to_string(),
            },
        }],
        ProcessFabricConfig {
            telemetry: true,
            ..fast_cfg(9)
        },
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>)
        .with_retry(LiveRetryPolicy {
            max_attempts: 6,
            task_timeout: Some(Duration::from_millis(400)),
            backoff: Duration::ZERO,
        })
        .with_trace(simkit::TraceLevel::Spans);
    let w = FabricWorkload::new(40, 17);
    let outcome = run_workload(&rt, &w);
    assert_matches_reference(&outcome, &w);

    let client = rt.take_client_tracer().expect("tracing enabled");
    fabric.shutdown();
    daemon.join().expect("daemon drains cleanly");
    let tel = fabric.telemetry(0);
    assert!(
        tel.counters.chaos_swallowed >= 1,
        "swallow counter shipped: {:?}",
        tel.counters
    );

    let chains = unifaas::obs::attempt_chains(Some(&client), std::slice::from_ref(&tel));
    let truncated = chains.iter().filter(|c| c.is_truncated()).count();
    assert!(
        truncated as u64 >= tel.counters.chaos_swallowed,
        "every swallowed attempt is a truncated chain ({truncated} < {})",
        tel.counters.chaos_swallowed
    );
    let merged = unifaas::obs::merge_process_timeline(Some(&client), std::slice::from_ref(&tel));
    let mut buf = Vec::new();
    merged.export_perfetto(&mut buf).unwrap();
    let json = String::from_utf8(buf).unwrap();
    assert!(json.contains("d.chaos.swallow"), "swallow instants visible");
}

#[test]
fn respawn_disabled_turns_sigkill_into_clean_permanent_failure() {
    // With respawn off and only one endpoint, killing it must fail the
    // remaining tasks with real error messages — never hang.
    let fabric = Arc::new(ProcessFabric::new(
        vec![spawn_spec("mortal", 2)],
        ProcessFabricConfig {
            timing: FabricTiming::fast(),
            seed: 7,
            respawn: false,
            telemetry: false,
        },
    ));
    let rt =
        FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(LiveRetryPolicy {
            max_attempts: 2,
            task_timeout: Some(Duration::from_millis(500)),
            backoff: Duration::ZERO,
        });
    let w = FabricWorkload::new(50, 3);
    let futures = submit_layered(&rt, &w);
    wait_completions(&rt, 5, Duration::from_secs(30));
    fabric.kill(0);
    rt.wait_all();
    let outcome = collect_outcome(&futures);
    assert!(outcome.failures > 0, "the kill should strand some tasks");
    // No hang, every future resolved, and the endpoint reads Dead.
    assert_eq!(outcome.results.len(), w.tasks);
    assert!(fabric.wait_probe(0, ProbeState::Dead, Duration::from_secs(5)));
    assert_eq!(fabric.counters(0).respawns, 0);
    fabric.shutdown();
}
