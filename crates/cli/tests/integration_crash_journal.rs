//! Crash-recovery test for the run journal: `kill -9` a real
//! `unifaas-sim` process mid-run and assert the half-written journal is
//! still a parseable clean prefix — every fully flushed chunk validates,
//! the truncated tail is dropped, and the doctor's verdict against an
//! untouched full run of the same spec is "clean prefix", not a
//! divergence.

use simkit::journal::Journal;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};
use unifaas::obs::{doctor, render_doctor, DoctorReport};

/// A deterministic spec big enough that SIGKILL lands mid-run: ~40k bag
/// tasks produce well over 100k journal records (many 4096-record
/// chunks), while the sim itself stays fast.
const SPEC: &str = "\
endpoint fast taiyi 16
endpoint slow qiming 8
strategy dha
seed 1234
workload bag n=40000 secs=20
";

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "unifaas-crash-journal-{}-{name}",
        std::process::id()
    ));
    p
}

#[test]
fn kill_nine_mid_run_leaves_a_parseable_clean_prefix_journal() {
    let spec_path = temp_path("spec.txt");
    let crash_path = temp_path("crash.journal");
    let full_path = temp_path("full.journal");
    std::fs::write(&spec_path, SPEC).expect("write spec");

    // Run 1: killed. Poll the journal file until at least two full
    // chunks (header + 2 * (8 + 4096*34 + 16) bytes) hit the disk, then
    // SIGKILL — the writer dies mid-stream with a partial tail.
    let mut child = Command::new(env!("CARGO_BIN_EXE_unifaas-sim"))
        .arg(&spec_path)
        .arg("--journal-out")
        .arg(&crash_path)
        .arg("--quiet")
        .spawn()
        .expect("spawn unifaas-sim");
    let two_chunks = 16 + 2 * (8 + 4096 * 34 + 16);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let size = std::fs::metadata(&crash_path).map(|m| m.len()).unwrap_or(0);
        if size >= two_chunks {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("run finished before the kill landed (status {status}, {size} bytes)");
        }
        assert!(
            Instant::now() < deadline,
            "journal never reached {two_chunks} bytes (at {size})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // The survivor: parseable, unclean, non-empty — corruption detection
    // dropped only the torn tail.
    let crashed = Journal::open(&crash_path).expect("truncated journal must still parse");
    assert!(
        !crashed.clean_close(),
        "a SIGKILLed run cannot have sealed its journal"
    );
    assert!(crashed.total_records() > 0, "no validated records survived");
    assert!(crashed.chunk_count() >= 2, "expected at least two chunks");

    // Run 2: the same deterministic spec to completion.
    let status = Command::new(env!("CARGO_BIN_EXE_unifaas-sim"))
        .arg(&spec_path)
        .arg("--journal-out")
        .arg(&full_path)
        .arg("--quiet")
        .status()
        .expect("full run");
    assert!(status.success(), "unfaulted run failed: {status}");
    let full = Journal::open(&full_path).expect("full journal");
    assert!(full.clean_close());
    assert!(full.total_records() > crashed.total_records());

    // Doctor verdict: a clean prefix, explicitly distinguished from a
    // real divergence.
    let report = doctor(&crashed, &full);
    let DoctorReport::Diverged(d) = &report else {
        panic!("truncated-vs-full must not be Identical");
    };
    assert!(
        d.is_clean_prefix(),
        "crash truncation misdiagnosed as divergence: {}",
        render_doctor(&report)
    );
    assert_eq!(
        d.shared_records(),
        crashed.total_records(),
        "every surviving record must match the full run"
    );
    let rendered = render_doctor(&report);
    assert!(
        rendered.contains("CLEAN PREFIX"),
        "verdict wording: {rendered}"
    );

    for p in [&spec_path, &crash_path, &full_path] {
        let _ = std::fs::remove_file(p);
    }
}
