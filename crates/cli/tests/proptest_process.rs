//! Property-based chaos: random small DAGs under random SIGKILL
//! schedules. This extends the PR 4 fault-tolerance proptest model to
//! the process path — the property is the same exactly-once contract,
//! but the faults are real child-process deaths, not simulated ones.
//!
//! Case counts are small (each case spawns real daemons and kills them),
//! but every case checks the full invariant: run completes, every task
//! resolves exactly once, and every result equals the unfaulted
//! in-process reference.

use fedci::fabric::{Fabric, FabricTiming};
use fedci::process::{EndpointMode, ProcessEndpointSpec, ProcessFabric, ProcessFabricConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unifaas::runtime::fabric::FabricRuntime;
use unifaas::runtime::live::LiveRetryPolicy;
use unifaas_cli::fabricrun::{collect_outcome, reference_outcome, submit_layered, FabricWorkload};

fn spawn_spec(name: &str) -> ProcessEndpointSpec {
    ProcessEndpointSpec {
        name: name.to_string(),
        workers: 2,
        mode: EndpointMode::Spawn {
            command: vec![env!("CARGO_BIN_EXE_unifaas-endpointd").to_string()],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// No task lost, none duplicated, all results reference-identical —
    /// under a random schedule of real SIGKILLs.
    #[test]
    fn random_kill_schedules_preserve_exactly_once(
        tasks in 6usize..13,
        width in 1usize..4,
        seed in 1u64..10_000,
        // (endpoint, after-k-completions) kill events, possibly none.
        kills in vec((0usize..2, 0u64..10), 0..3),
    ) {
        let w = FabricWorkload { tasks, width, seed };
        let fabric = Arc::new(ProcessFabric::new(
            vec![spawn_spec("p0"), spawn_spec("p1")],
            ProcessFabricConfig {
                timing: FabricTiming::fast(),
                seed,
                respawn: true,
                telemetry: false,
            },
        ));
        let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>)
            .with_retry(LiveRetryPolicy {
                max_attempts: 8,
                task_timeout: Some(Duration::from_secs(5)),
                backoff: Duration::from_millis(2),
            });
        let futures = submit_layered(&rt, &w);

        let mut kills = kills.clone();
        kills.sort_by_key(|&(_, after)| after);
        let start = Instant::now();
        for (ep, after) in kills {
            let after = after.min(tasks as u64 - 1);
            while rt.stats().completed < after {
                prop_assert!(
                    start.elapsed() < Duration::from_secs(60),
                    "stalled waiting for completion {after}"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            fabric.kill(ep);
        }

        rt.wait_all();
        let outcome = collect_outcome(&futures);
        fabric.shutdown();

        // Exactly once: every task resolved, none twice (a double
        // resolution panics the future's debug_assert and would also
        // corrupt `completed`).
        prop_assert_eq!(outcome.results.len(), tasks);
        prop_assert_eq!(rt.stats().completed as usize, tasks);
        prop_assert_eq!(outcome.failures, 0, "results: {:?}", outcome.results);
        let want = reference_outcome(&w);
        for (i, (got, want)) in outcome.results.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                got.as_ref().unwrap().as_slice(),
                want.as_slice(),
                "task {} diverged from unfaulted reference",
                i
            );
        }
    }
}
