#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints-as-errors, full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "All checks passed."
