#!/usr/bin/env bash
# Process-fabric chaos gate: release-mode chaos suites (real SIGKILLs of
# child endpoint daemons, mid-frame socket cuts, half-open connections,
# duplicate/replayed RESULTs, a kill -9'd journal writer), then an
# end-to-end digest equivalence run of the `unifaas-fabric` driver:
# threaded backend, unfaulted process backend, and a process run whose
# endpoints are SIGKILLed mid-flight must all print the same result
# digest with zero failures.
#
# Usage: scripts/check_process_chaos.sh [outdir]
#   outdir — where run transcripts, digests and recovery counters land
#   (default process-chaos/). CI uploads this directory as an artifact
#   when the gate fails, so a flaky recovery on a runner ships the
#   evidence needed to debug it offline.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-process-chaos}"
mkdir -p "$outdir"

echo "==> release chaos suites (SIGKILL, socket cuts, stale replay)"
cargo test --release -q -p unifaas-cli --test integration_process \
  -- --nocapture 2>&1 | tee "$outdir/integration_process.txt"
cargo test --release -q -p unifaas-cli --test proptest_process \
  2>&1 | tee "$outdir/proptest_process.txt"

echo "==> kill -9 journal recovery (partial chunk parses, doctor says clean prefix)"
cargo test --release -q -p unifaas-cli --test integration_crash_journal \
  2>&1 | tee "$outdir/crash_journal.txt"

echo "==> building release fabric binaries"
cargo build --release -q -p unifaas-cli \
  --bin unifaas-fabric --bin unifaas-endpointd

fabric() {
  local tag="$1"
  shift
  ./target/release/unifaas-fabric \
    --tasks 400 --width 4 --seed 2024 --fast-timing --report "$@" \
    2> "$outdir/$tag.report.txt" | tee "$outdir/$tag.out.txt"
}

echo "==> digest gate: threaded vs process vs process+SIGKILL"
fabric threaded --backend threaded
fabric process --backend process
# The chaos run doubles as the observability witness: it writes the
# merged cross-process Perfetto timeline and the final scraped metrics,
# which CI uploads alongside the transcripts when the gate fails.
fabric chaos --backend process \
  --chaos-kill 0:60 --chaos-kill 1:150 --chaos-kill 0:250 \
  --trace-out "$outdir/chaos_trace.json" \
  --metrics-out "$outdir/chaos_metrics.prom"

digest() { sed -n 's/^digest=\(0x[0-9a-f]*\).*/\1/p' "$outdir/$1.out.txt"; }
d_threaded=$(digest threaded)
d_process=$(digest process)
d_chaos=$(digest chaos)
echo "threaded=$d_threaded process=$d_process chaos=$d_chaos"
if [ -z "$d_threaded" ] || [ "$d_threaded" != "$d_process" ] \
  || [ "$d_threaded" != "$d_chaos" ]; then
  echo "FAIL: digests diverge across backends/faults" >&2
  cat "$outdir/chaos.report.txt" >&2
  exit 1
fi
for tag in threaded process chaos; do
  if ! grep -q " failures=0 " "$outdir/$tag.out.txt"; then
    echo "FAIL: $tag run reported failures" >&2
    exit 1
  fi
done
if ! grep -q "respawns=[1-9]" "$outdir/chaos.report.txt"; then
  echo "FAIL: chaos run never respawned a killed endpoint" >&2
  cat "$outdir/chaos.report.txt" >&2
  exit 1
fi
echo "OK: SIGKILLed process run converged to the unfaulted digest ($d_threaded)"

echo "==> observability gate: merged timeline + metrics from the chaos run"
if ! [ -s "$outdir/chaos_trace.json" ]; then
  echo "FAIL: chaos run wrote no merged trace" >&2
  exit 1
fi
# The SIGKILL signature: the client track, a generation-0 track with an
# offset-corrected clock label, and a post-respawn (generation >= 1)
# track. A mid-run kill can eat a whole generation's un-flushed ring, so
# the post-respawn witness is the surviving generation, whatever its
# number.
for marker in '"client"' 'gen0 (offset '; do
  if ! grep -q "$marker" "$outdir/chaos_trace.json"; then
    echo "FAIL: merged chaos trace missing $marker" >&2
    exit 1
  fi
done
if ! grep -Eq 'gen[1-9][0-9]* \((offset |clock unsynced)' \
  "$outdir/chaos_trace.json"; then
  echo "FAIL: merged chaos trace has no post-respawn generation track" >&2
  exit 1
fi
if ! grep -q "causal violations" "$outdir/chaos.report.txt" \
  || ! grep -q " 0 causal violations" "$outdir/chaos.report.txt"; then
  echo "FAIL: chaos timeline reported causal violations (or none computed)" >&2
  grep "violation" "$outdir/chaos.report.txt" >&2 || true
  exit 1
fi
if ! grep -q '^fedci_proc_respawns' "$outdir/chaos_metrics.prom" \
  || ! grep -q '^fedci_wire_' "$outdir/chaos_metrics.prom"; then
  echo "FAIL: chaos metrics export missing fedci_proc_*/fedci_wire_* series" >&2
  exit 1
fi
echo "OK: chaos run shipped a causally clean merged timeline and fedci_* metrics"
