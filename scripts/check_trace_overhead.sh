#!/usr/bin/env bash
# Observability-overhead gate: the e2e throughput benchmark with tracing
# AND metrics DISABLED must stay within the given tolerance of the
# committed BENCH_e2e.json baseline on the stress-100k DHA row (the row
# most sensitive to per-event coordinator overhead). This is the
# "zero-cost when disabled" witness: the instrumented binary, with no
# trace configured and no metrics registry enabled, pays only a
# pointer-null check per trace site and a single branch per metric site.
#
# Usage: scripts/check_trace_overhead.sh [tolerance] [journal_tolerance]
#   tolerance — allowed relative slowdown, default 0.05 (5%). CI runners
#   with noisy neighbours can pass a larger value.
#   journal_tolerance — allowed slowdown for the journal-ENABLED run
#   relative to this machine's fresh journal-disabled measurement (not
#   the committed baseline, so the envelope measures journal overhead
#   rather than runner drift), default 0.60 (60%): encoding, digesting
#   and buffering ~34 bytes per delivered event (plus scheduler decision
#   notes) is paid for, but bounded — the journal is the most verbose
#   observability layer, recording every delivery. The journal-disabled runs above stay
#   under the strict envelope — a `None` journal tap is a null check per
#   delivered event, and the bench-smoke alloc gate (exact, zero
#   steady-state allocations under --features alloc-count) covers the
#   disabled path's allocation behaviour unchanged.
#
# The benchmark binary rewrites BENCH_e2e.json in the working directory, so
# the committed baseline is read *before* the run. Three engine paths are
# gated: the default calendar-queue engine, the sharded engine (--shards 5),
# and the binary-heap reference queue (--reference-queue). The sharded and
# heap runs must additionally reproduce the default run's stress-100k
# makespan bit-for-bit — sharding and queue choice are execution
# strategies, not semantic changes.
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance="${1:-0.05}"
journal_tolerance="${2:-0.60}"

extract() {
  awk -F'"wall_s": ' '
    /"workload": "stress-100k"/ && /"scheduler": "DHA"/ {
      split($2, a, ","); print a[1]; exit
    }' "$1"
}

baseline=$(extract BENCH_e2e.json)
if [ -z "$baseline" ]; then
  echo "error: no stress-100k DHA row in committed BENCH_e2e.json" >&2
  exit 1
fi

extract_makespan() {
  awk -F'"makespan_s": ' '
    /"workload": "stress-100k"/ && /"scheduler": "DHA"/ {
      split($2, a, ","); print a[1]; exit
    }' "$1"
}

gate() {
  local label="$1" current="$2" tol="${3:-$tolerance}" base="${4:-$baseline}"
  echo "stress-100k DHA wall [$label]: baseline ${base}s, current ${current}s (tolerance ${tol})"
  awk -v base="$base" -v cur="$current" -v tol="$tol" 'BEGIN {
    limit = base * (1 + tol)
    if (cur > limit) {
      printf "FAIL: %.3fs exceeds %.3fs (baseline %.3fs + %.0f%%)\n", cur, limit, base, tol * 100
      exit 1
    }
    printf "OK: %.3fs <= %.3fs\n", cur, limit
  }'
}

echo "==> running e2e throughput benchmark (tracing and metrics disabled)"
cargo run --release -q -p unifaas-bench --bin e2e_throughput -- --smoke

current=$(extract BENCH_e2e.json)
makespan_single=$(extract_makespan BENCH_e2e.json)
git checkout -- BENCH_e2e.json 2>/dev/null || true
gate "calendar-queue" "$current"
# The journal-enabled gate below compares against this machine's fresh
# disabled measurement, not the committed baseline, so it measures
# journal overhead rather than runner drift.
disabled_wall="$current"

# The same gate against the sharded event engine: an execution strategy,
# not a semantic change, so it must stay inside the overhead envelope
# AND reproduce the simulated outcome (makespan column) exactly.
echo "==> running e2e throughput benchmark (sharded engine, 5 shards)"
cargo run --release -q -p unifaas-bench --bin e2e_throughput -- --smoke --shards 5

current=$(extract BENCH_e2e.json)
makespan_sharded=$(extract_makespan BENCH_e2e.json)
git checkout -- BENCH_e2e.json 2>/dev/null || true
gate "sharded" "$current"

if [ "$makespan_single" != "$makespan_sharded" ]; then
  echo "FAIL: sharded engine changed stress-100k DHA makespan" \
       "(${makespan_single}s -> ${makespan_sharded}s)" >&2
  exit 1
fi
echo "OK: sharded makespan identical (${makespan_sharded}s)"

# The binary-heap reference queue is kept as a differential oracle for
# the calendar queue: it must produce a bit-identical simulated outcome.
# No wall-clock gate here — the heap path is the slower reference and is
# only required to be *correct*, not fast.
echo "==> running e2e throughput benchmark (binary-heap reference queue)"
cargo run --release -q -p unifaas-bench --bin e2e_throughput -- --smoke --reference-queue

makespan_heap=$(extract_makespan BENCH_e2e.json)
git checkout -- BENCH_e2e.json 2>/dev/null || true

if [ "$makespan_single" != "$makespan_heap" ]; then
  echo "FAIL: heap reference queue changed stress-100k DHA makespan" \
       "(${makespan_single}s -> ${makespan_heap}s)" >&2
  exit 1
fi
echo "OK: heap-reference makespan identical (${makespan_heap}s)"

# Journal-ENABLED envelope: the run journal records every delivered
# event (34 bytes, buffered sequential writes plus decision notes). It
# observes delivery order but must never steer it, so the journaled run
# must reproduce the makespan bit-for-bit while staying inside the
# looser journal_tolerance wall-clock envelope.
echo "==> running e2e throughput benchmark (run journal enabled)"
jdir=$(mktemp -d)
trap 'rm -rf "$jdir"' EXIT
cargo run --release -q -p unifaas-bench --bin e2e_throughput -- \
  --smoke --journal "$jdir/e2e"

current=$(extract BENCH_e2e.json)
makespan_journal=$(extract_makespan BENCH_e2e.json)
git checkout -- BENCH_e2e.json 2>/dev/null || true
gate "journal-enabled" "$current" "$journal_tolerance" "$disabled_wall"

if [ "$makespan_single" != "$makespan_journal" ]; then
  echo "FAIL: enabling the run journal changed stress-100k DHA makespan" \
       "(${makespan_single}s -> ${makespan_journal}s)" >&2
  exit 1
fi
echo "OK: journal-enabled makespan identical (${makespan_journal}s)"

jcount=$(ls "$jdir"/e2e.*.journal 2>/dev/null | wc -l)
if [ "$jcount" -eq 0 ]; then
  echo "FAIL: journal-enabled run wrote no journal files" >&2
  exit 1
fi
echo "OK: ${jcount} journals written"

# Fabric telemetry gate: the live process fabric with telemetry DISABLED
# (no --trace-out/--metrics-out → no TELEMETRY_SUB on the wire, daemon
# ring never drains, client tracer never allocated) must produce the same
# digest as the fully observed run — observability must never steer the
# run — and the observed run must stay inside a generous wall envelope of
# the disabled one (the runs are short and timing-paced, so the envelope
# is absolute-slack-padded rather than a tight ratio).
echo "==> building release fabric binaries"
cargo build --release -q -p unifaas-cli --bin unifaas-fabric --bin unifaas-endpointd

fdir="$jdir/fabric"
mkdir -p "$fdir"

run_fabric() {
  local tag="$1"
  shift
  local t0 t1
  t0=$(date +%s.%N)
  ./target/release/unifaas-fabric --backend process \
    --tasks 300 --width 4 --seed 7 --fast-timing "$@" \
    > "$fdir/$tag.out" 2> "$fdir/$tag.err"
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}

echo "==> running process fabric (telemetry disabled)"
wall_off=$(run_fabric off)
echo "==> running process fabric (merged trace + metrics export)"
wall_on=$(run_fabric on \
  --trace-out "$fdir/trace.json" --metrics-out "$fdir/metrics.prom")

fab_digest() { sed -n 's/^digest=\(0x[0-9a-f]*\).*/\1/p' "$fdir/$1.out"; }
d_off=$(fab_digest off)
d_on=$(fab_digest on)
echo "fabric digests: disabled=$d_off observed=$d_on" \
     "(wall ${wall_off}s vs ${wall_on}s)"
if [ -z "$d_off" ] || [ "$d_off" != "$d_on" ]; then
  echo "FAIL: enabling telemetry changed the fabric digest" >&2
  cat "$fdir/on.err" >&2
  exit 1
fi
for tag in off on; do
  if ! grep -q " failures=0 " "$fdir/$tag.out"; then
    echo "FAIL: fabric $tag run reported failures" >&2
    exit 1
  fi
done
awk -v off="$wall_off" -v on="$wall_on" 'BEGIN {
  limit = off * 1.5 + 1.0
  if (on > limit) {
    printf "FAIL: observed fabric run %.3fs exceeds %.3fs (disabled %.3fs * 1.5 + 1s)\n",
           on, limit, off
    exit 1
  }
  printf "OK: observed fabric run %.3fs <= %.3fs\n", on, limit
}'
if ! grep -q '"client"' "$fdir/trace.json" \
  || ! grep -q 'gen0 (offset ' "$fdir/trace.json"; then
  echo "FAIL: merged trace missing client track or offset-corrected daemon track" >&2
  exit 1
fi
if ! grep -q '^fedci_' "$fdir/metrics.prom"; then
  echo "FAIL: metrics export missing fedci_* series" >&2
  exit 1
fi
if grep -q "causal violations" "$fdir/on.err" \
  && ! grep -q " 0 causal violations" "$fdir/on.err"; then
  echo "FAIL: observed fabric run reported causal violations" >&2
  grep "violation" "$fdir/on.err" >&2
  exit 1
fi
echo "OK: telemetry-disabled fabric path digest-identical; merged trace and metrics exported"
