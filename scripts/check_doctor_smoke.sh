#!/usr/bin/env bash
# Doctor smoke gate: journal the stress-100k DHA run on the calendar
# wheel, the binary-heap reference queue and the sharded engine; the
# divergence doctor must report all three journals bit-identical. Then
# inject a one-microsecond perturbation mid-journal with
# `unifaas-sim journal-perturb` and require the doctor to localize the
# divergence to exactly that record — never a neighbour, never a
# whole-chunk smear.
#
# Usage: scripts/check_doctor_smoke.sh [outdir]
#   outdir — where journals, bench rows and doctor transcripts land
#   (default doctor-smoke/). CI uploads this directory as an artifact
#   when the gate fails, so a digest divergence on a runner ships the
#   evidence needed to debug it offline.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-doctor-smoke}"
mkdir -p "$outdir"

bench() {
  local tag="$1"
  shift
  echo "==> journaled stress-100k DHA run [$tag]"
  cargo run --release -q -p unifaas-bench --bin e2e_throughput -- \
    --smoke --only stress-100k --strategy DHA \
    --out "$outdir/bench-$tag.json" --journal "$outdir/$tag" "$@"
  mv "$outdir/$tag.stress-100k.DHA.journal" "$outdir/$tag.journal"
}

bench wheel
bench heap --reference-queue
bench sharded --shards 5

doctor() {
  cargo run --release -q -p unifaas-cli --bin unifaas-sim -- doctor "$@"
}

echo "==> doctor: wheel vs heap"
doctor "$outdir/wheel.journal" "$outdir/heap.journal" \
  | tee "$outdir/doctor-wheel-heap.txt"
grep -q "^journals identical" "$outdir/doctor-wheel-heap.txt"

echo "==> doctor: single vs sharded"
doctor "$outdir/wheel.journal" "$outdir/sharded.journal" \
  | tee "$outdir/doctor-wheel-sharded.txt"
grep -q "^journals identical" "$outdir/doctor-wheel-sharded.txt"

records=$(sed -n 's/^journals identical: \([0-9]*\) records.*/\1/p' \
  "$outdir/doctor-wheel-heap.txt")
target=$((records / 2))
echo "==> injecting 1us perturbation at record #$target of $records"
cargo run --release -q -p unifaas-cli --bin unifaas-sim -- \
  journal-perturb "$outdir/wheel.journal" "$outdir/perturbed.journal" "$target"

set +e
doctor "$outdir/wheel.journal" "$outdir/perturbed.journal" \
  > "$outdir/doctor-perturbed.txt"
status=$?
set -e
cat "$outdir/doctor-perturbed.txt"
if [ "$status" -ne 1 ]; then
  echo "FAIL: doctor exit code $status for a diverged pair (want 1)" >&2
  exit 1
fi
if ! grep -q "^journals DIVERGE at record #${target}\$" \
  "$outdir/doctor-perturbed.txt"; then
  echo "FAIL: doctor did not localize the perturbation to record #$target" >&2
  exit 1
fi
echo "OK: doctor localized the injected perturbation to record #$target"
