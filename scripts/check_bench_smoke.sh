#!/usr/bin/env bash
# Bench-smoke regression gate: run `e2e_throughput --smoke` and fail if
# the stress-100k DHA events/s throughput regressed more than the given
# fraction below the committed BENCH_e2e.json baseline.
#
# Usage: scripts/check_bench_smoke.sh [max_regression]
#   max_regression — allowed relative throughput drop, default 0.10
#   (10%). CI runners with noisy neighbours can pass a larger value.
#
# The benchmark rewrites BENCH_e2e.json in place, so the baseline is read
# before the run and the file is restored afterwards; the fresh results
# are kept in bench-smoke/ for artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

max_regression="${1:-0.10}"

extract_eps() {
  awk -F'"events_per_sec": ' '
    /"workload": "stress-100k"/ && /"scheduler": "DHA"/ {
      split($2, a, ","); print a[1]; exit
    }' "$1"
}

baseline=$(extract_eps BENCH_e2e.json)
if [ -z "$baseline" ]; then
  echo "error: no stress-100k DHA row in committed BENCH_e2e.json" >&2
  exit 1
fi

echo "==> running e2e throughput benchmark (smoke set)"
cargo run --release -q -p unifaas-bench --bin e2e_throughput -- --smoke

current=$(extract_eps BENCH_e2e.json)
mkdir -p bench-smoke
cp BENCH_e2e.json bench-smoke/BENCH_e2e.smoke.json
git checkout -- BENCH_e2e.json 2>/dev/null || true

echo "stress-100k DHA events/s: baseline ${baseline}, current ${current}" \
     "(max regression ${max_regression})"
awk -v base="$baseline" -v cur="$current" -v tol="$max_regression" 'BEGIN {
  floor = base * (1 - tol)
  if (cur < floor) {
    printf "FAIL: %.0f events/s below %.0f (baseline %.0f - %.0f%%)\n",
           cur, floor, base, tol * 100
    exit 1
  }
  printf "OK: %.0f events/s >= %.0f\n", cur, floor
}'
