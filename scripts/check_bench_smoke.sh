#!/usr/bin/env bash
# Bench-smoke regression gate, three checks in one script:
#
#   1. Throughput: `e2e_throughput --smoke` (built with `--features
#      alloc-count`) must keep stress-100k DHA events/s within the given
#      fraction of the committed BENCH_e2e.json baseline.
#   2. Allocations: the stress-100k Capacity row must show (near-)zero
#      steady-state allocations — the slab event pool and recycled
#      scratch buffers mean every allocation after warm-up is a bug.
#      The gate allows at most events/100 allocations for the whole run,
#      which admits setup growth (~2.4k allocations for 400k events
#      today) but fails on even one allocation per hundred events.
#   3. Scale: a separate `--only stress-1m --strategy Capacity` run must
#      keep million-task events/s within the same fraction of its
#      committed baseline (the calendar-queue hot path at full scale).
#
# Usage: scripts/check_bench_smoke.sh [max_regression]
#   max_regression — allowed relative throughput drop, default 0.10
#   (10%). CI runners with noisy neighbours can pass a larger value.
#
# Fresh results are written to bench-smoke/ via --out, so the committed
# BENCH_e2e.json baseline is never touched.
set -euo pipefail
cd "$(dirname "$0")/.."

max_regression="${1:-0.10}"

# extract FILE WORKLOAD SCHEDULER FIELD — one numeric JSON field from
# the first row matching the workload × scheduler pair.
extract() {
  awk -v w="\"workload\": \"$2\"" -v s="\"scheduler\": \"$3\"" \
      -F"\"$4\": " '
    $0 ~ w && $0 ~ s { split($2, a, ","); print a[1]; exit }' "$1"
}

gate_eps() {
  local label="$1" base="$2" cur="$3"
  echo "${label} events/s: baseline ${base}, current ${cur}" \
       "(max regression ${max_regression})"
  awk -v base="$base" -v cur="$cur" -v tol="$max_regression" 'BEGIN {
    floor = base * (1 - tol)
    if (cur < floor) {
      printf "FAIL: %.0f events/s below %.0f (baseline %.0f - %.0f%%)\n",
             cur, floor, base, tol * 100
      exit 1
    }
    printf "OK: %.0f events/s >= %.0f\n", cur, floor
  }'
}

baseline_100k=$(extract BENCH_e2e.json stress-100k DHA events_per_sec)
baseline_1m=$(extract BENCH_e2e.json stress-1m Capacity events_per_sec)
if [ -z "$baseline_100k" ] || [ -z "$baseline_1m" ]; then
  echo "error: missing stress-100k DHA or stress-1m Capacity row in" \
       "committed BENCH_e2e.json" >&2
  exit 1
fi

mkdir -p bench-smoke

echo "==> running e2e throughput benchmark (smoke set, alloc counting on)"
cargo run --release -q -p unifaas-bench --features alloc-count \
  --bin e2e_throughput -- --smoke --out bench-smoke/BENCH_e2e.smoke.json

gate_eps "stress-100k DHA" "$baseline_100k" \
  "$(extract bench-smoke/BENCH_e2e.smoke.json stress-100k DHA events_per_sec)"

# Zero-steady-state-allocation gate. `allocs` is null unless the binary
# was built with --features alloc-count, so a null here means the gate
# silently stopped measuring — fail loudly instead.
allocs=$(extract bench-smoke/BENCH_e2e.smoke.json stress-100k Capacity allocs)
events=$(extract bench-smoke/BENCH_e2e.smoke.json stress-100k Capacity events)
if [ -z "$allocs" ] || [ "$allocs" = "null" ]; then
  echo "FAIL: allocs column is null — alloc-count feature not active" >&2
  exit 1
fi
echo "stress-100k Capacity allocations: ${allocs} over ${events} events"
awk -v allocs="$allocs" -v events="$events" 'BEGIN {
  limit = int(events / 100)
  if (allocs > limit) {
    printf "FAIL: %d allocations exceed %d (events/100) — steady state is no longer allocation-free\n",
           allocs, limit
    exit 1
  }
  printf "OK: %d allocations <= %d (%.4f per event)\n",
         allocs, limit, allocs / events
}'

echo "==> running million-task capacity benchmark (calendar-queue hot path)"
cargo run --release -q -p unifaas-bench --features alloc-count \
  --bin e2e_throughput -- --only stress-1m --strategy Capacity \
  --out bench-smoke/BENCH_e2e.stress1m.json

gate_eps "stress-1m Capacity" "$baseline_1m" \
  "$(extract bench-smoke/BENCH_e2e.stress1m.json stress-1m Capacity events_per_sec)"
