pub use unifaas;
