//! Live metrics: scrape a running `LiveRuntime` in Prometheus format.
//!
//! Starts the in-repo scrape server (`LiveRuntime::serve_metrics`, plain
//! `std::net::TcpListener` — no HTTP dependency), submits a batch of work,
//! and fetches `/metrics` with a raw TCP GET to show what Prometheus would
//! see: per-pool worker/busy/up gauges, monotone job counters and the
//! coordinator's outstanding-task gauge.
//!
//! Run with: `cargo run --release --example live_metrics`

use std::io::{Read as _, Write as _};
use unifaas::runtime::live::{value, LiveRuntime, Value};

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to scrape server");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(response);
    body
}

fn main() {
    let rt = LiveRuntime::new(&[("cluster", 4), ("lab", 2)]);
    rt.register("spin", |_args: &[Value]| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        Ok(value(()))
    });

    // Port 0 lets the OS pick; a real deployment would pass a fixed
    // address and point a Prometheus scrape job (or `curl`) at it.
    let server = rt
        .serve_metrics("127.0.0.1:0")
        .expect("start scrape server");
    let addr = server.local_addr();
    println!("serving metrics at http://{addr}/metrics\n");

    let futures: Vec<_> = (0..16)
        .map(|_| rt.submit("spin", vec![], &[]).expect("submit"))
        .collect();

    // Scrape mid-flight: busy workers and outstanding tasks are nonzero.
    println!("--- mid-run scrape ---");
    for line in scrape(addr).lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }

    for f in &futures {
        f.wait().expect("task failed");
    }
    rt.wait_all();

    // Scrape after the drain: counters keep their totals, gauges go idle.
    println!("\n--- post-run scrape ---");
    for line in scrape(addr).lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }
    // The server thread stops when `server` drops.
}
