//! The Montage astronomy mosaic workflow with elastic multi-endpoint
//! scaling (§IV-H): endpoints start cold, scale out in whole-node units as
//! the per-stage demand rises, and return their workers after the
//! configured idle interval.
//!
//! Run with: `cargo run --release --example montage`

use simkit::{SimDuration, SimTime};
use taskgraph::workloads::montage::{generate, MontageParams};
use unifaas::config::ScalingConfig;
use unifaas::prelude::*;

fn main() {
    // 200 tiles → 1,006 tasks with the classic montage structure.
    let dag = generate(&MontageParams::small(200));
    println!(
        "montage: {} tasks / {} functions, mean {:.1} s per task\n",
        dag.len(),
        dag.n_functions(),
        dag.summary().mean_task_seconds
    );

    let mut cfg = Config::builder()
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 0).elastic(0, 120, 20))
        .endpoint(EndpointConfig::new("Lab", ClusterSpec::lab_cluster(), 0).elastic(0, 40, 10))
        .strategy(SchedulingStrategy::Locality)
        .build();
    cfg.scaling = ScalingConfig {
        enabled: true,
        idle_timeout: SimDuration::from_secs(30),
        interval: SimDuration::from_secs(1),
        policy: unifaas::config::ScalingPolicyKind::Default,
    };

    let report = SimRuntime::new(cfg, dag).run().expect("workflow failed");
    println!(
        "completed {} tasks in {:.0} s (transfer {:.2} GB)\n",
        report.tasks_completed,
        report.makespan.as_secs_f64(),
        report.transfer_gb()
    );

    // Print the worker timeline: scale-out bursts for the parallel stages,
    // scale-in during the serial tail, release at the end.
    println!(
        "{:>8} {:>14} {:>14}",
        "t (s)", "Qiming workers", "Lab workers"
    );
    let end = SimTime::ZERO + report.makespan + SimDuration::from_secs(60);
    let step = SimDuration::from_secs_f64((end.as_secs_f64() / 12.0).max(1.0));
    let q = report.series.active_workers.get("Qiming").expect("series");
    let l = report.series.active_workers.get("Lab").expect("series");
    for (t, qv) in q.resample(SimTime::ZERO, end, step) {
        println!(
            "{:>8.0} {:>14.0} {:>14.0}",
            t.as_secs_f64(),
            qv,
            l.value_at(t)
        );
    }

    let final_workers = q.value_at(end) + l.value_at(end);
    println!("\nworkers at the end: {final_workers} (scaled in after the idle timeout)");
}
