//! The paper's motivating use case (§II): a drug-screening workflow run
//! across four heterogeneous clusters, comparing the three scheduling
//! algorithms against a single-cluster baseline — a miniature of Table IV.
//!
//! Run with: `cargo run --release --example drug_screening`

use taskgraph::workloads::drug::{generate, DrugParams};
use unifaas::prelude::*;

fn pool() -> Config {
    // The Table II testbed, scaled down so the example runs in a blink:
    // worker counts keep the paper's EP1 ≫ EP2 > EP3 ≈ EP4 shape.
    Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 200))
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 38))
        .endpoint(EndpointConfig::new("Dept", ClusterSpec::dept_cluster(), 5))
        .endpoint(EndpointConfig::new("Lab", ClusterSpec::lab_cluster(), 5))
        .build()
}

fn main() {
    // 600 molecule pipelines → 2,401 tasks (the full paper workflow uses
    // 6,000 pipelines; same generator, same shape).
    let workload = || generate(&DrugParams::small(600));

    println!(
        "drug screening: {} tasks, {:.0} h total compute, {:.1} GB data\n",
        workload().len(),
        workload().total_compute_seconds() / 3600.0,
        workload().total_data_bytes() as f64 / (1u64 << 30) as f64
    );

    println!(
        "{:<22} {:>12} {:>16}",
        "scheduler", "makespan (s)", "transfer (GB)"
    );
    for strategy in [
        SchedulingStrategy::Capacity,
        SchedulingStrategy::Locality,
        SchedulingStrategy::Dha { rescheduling: true },
    ] {
        let mut cfg = pool();
        cfg.strategy = strategy;
        let report = SimRuntime::new(cfg, workload())
            .run()
            .expect("workflow failed");
        println!(
            "{:<22} {:>12.0} {:>16.2}",
            report.scheduler,
            report.makespan.as_secs_f64(),
            report.transfer_gb()
        );
    }

    // Baseline: only the big supercomputer.
    let base_cfg = Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 200))
        .strategy(SchedulingStrategy::Capacity)
        .build();
    let base = SimRuntime::new(base_cfg, workload())
        .run()
        .expect("baseline failed");
    println!(
        "{:<22} {:>12.0} {:>16.2}",
        "Baseline: only Taiyi",
        base.makespan.as_secs_f64(),
        base.transfer_gb()
    );
    println!("\nfederating the small clusters alongside Taiyi should beat the baseline,");
    println!("with DHA ahead of Capacity and Locality (cf. Table IV).");
}
