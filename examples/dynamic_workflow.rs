//! Everything dynamic at once: a workflow whose DAG *grows during
//! execution* (future-passing at runtime, §III-B), on a resource pool whose
//! *capacity changes mid-run* (Table V's scenario), with *fault injection*
//! exercising transfer retries and task reassignment (§IV-G).
//!
//! DHA's delay + re-scheduling mechanisms are exactly what make this
//! combination work; the example also runs plain Locality for contrast.
//!
//! Run with: `cargo run --release --example dynamic_workflow`

use simkit::SimTime;
use unifaas::prelude::*;

fn base_dag() -> Dag {
    let mut dag = Dag::new();
    let screen = dag.register_function("screen");
    for _ in 0..120 {
        dag.add_task(
            TaskSpec::compute(screen, 45.0).with_output_bytes(16 << 20),
            &[],
        );
    }
    dag
}

fn run(strategy: SchedulingStrategy) -> unifaas::RunReport {
    let cfg = Config::builder()
        .endpoint(EndpointConfig::new("big", ClusterSpec::taiyi(), 40))
        .endpoint(EndpointConfig::new("small", ClusterSpec::lab_cluster(), 10))
        .strategy(strategy)
        // Dynamic capacity: the big cluster loses 30 of 40 workers at
        // t=60 s (preempting running tasks), the small one gains 30 at
        // t=90 s.
        .capacity_event(60, 0, -30)
        .capacity_event(90, 1, 30)
        // Faults: 5% of transfers and 3% of task attempts fail.
        .faults(0.05, 0.03)
        .retries(5, 5)
        .build();

    let mut rt = SimRuntime::new(cfg, base_dag());

    // Dynamic DAG growth: once the screening wave is underway, a second
    // analysis stage appears — one refinement task per 10 screens, plus a
    // final report task, none of which existed at submission.
    rt.inject_at(SimTime::from_secs(30), |dag| {
        let refine = dag.register_function("refine");
        let report = dag.register_function("report");
        let mut refines = Vec::new();
        for block in 0..12 {
            let deps: Vec<TaskId> = (0..10).map(|i| TaskId(block * 10 + i)).collect();
            refines.push(dag.add_task(
                TaskSpec::compute(refine, 20.0).with_output_bytes(12 << 20),
                &deps,
            ));
        }
        dag.add_task(TaskSpec::compute(report, 10.0), &refines);
    });

    rt.run().expect("workflow failed")
}

fn main() {
    println!("dynamic DAG (120 → 133 tasks) + capacity events + faults\n");
    println!(
        "{:<16} {:>12} {:>14} {:>16}",
        "scheduler", "makespan (s)", "transfer (MB)", "failed attempts"
    );
    for strategy in [
        SchedulingStrategy::Locality,
        SchedulingStrategy::Dha {
            rescheduling: false,
        },
        SchedulingStrategy::Dha { rescheduling: true },
    ] {
        let r = run(strategy);
        assert_eq!(r.tasks_completed, 133);
        println!(
            "{:<16} {:>12.0} {:>14.1} {:>16}",
            r.scheduler,
            r.makespan.as_secs_f64(),
            r.transfer_bytes as f64 / (1 << 20) as f64,
            r.failed_attempts
        );
    }
    println!("\nall 133 tasks (including the 13 injected mid-run) completed on every run;");
    println!("re-scheduling lets DHA chase the capacity as it moves between clusters.");
}
