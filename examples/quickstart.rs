//! Quickstart: the UniFaaS programming model on the live (real-thread)
//! runtime.
//!
//! Mirrors the paper's Listing 1 flow: register functions, invoke them to
//! get futures, pass futures as arguments to build a dynamic task graph,
//! and let the runtime place tasks across endpoints.
//!
//! Run with: `cargo run --release --example quickstart`

use unifaas::runtime::live::{downcast, value, LiveRuntime, Value};

fn main() {
    // Two in-process "endpoints": a 4-worker cluster and a 2-worker lab
    // machine, with a simulated 100 MB/s WAN between them so data gravity
    // is observable.
    let rt = LiveRuntime::new(&[("cluster", 4), ("lab", 2)])
        .with_transfer_bandwidth(100.0 * 1024.0 * 1024.0);

    // --- register functions (the `@function` decorator) -----------------
    rt.register("tokenize", |args: &[Value]| {
        let text = downcast::<String>(&args[0]).ok_or("expected a String")?;
        let words: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        Ok(value(words))
    });
    rt.register("count", |args: &[Value]| {
        let words = downcast::<Vec<String>>(&args[0]).ok_or("expected words")?;
        Ok(value(words.len() as u64))
    });
    rt.register("sum", |args: &[Value]| {
        let mut total = 0u64;
        for v in args {
            total += *downcast::<u64>(v).ok_or("expected u64")?;
        }
        Ok(value(total))
    });

    // --- compose a dynamic task graph via future passing ---------------
    let docs = [
        "the quick brown fox jumps over the lazy dog",
        "federated function serving across distributed cyberinfrastructure",
        "observe predict decide",
        "write once run anywhere",
    ];

    let mut counts = Vec::new();
    for doc in docs {
        // tokenize → count forms a two-stage pipeline per document; the
        // future of `tokenize` is passed straight into `count`.
        let toks = rt
            .submit_sized("tokenize", vec![value(doc.to_string())], &[], 1 << 20)
            .expect("submit tokenize");
        let cnt = rt.submit("count", vec![], &[&toks]).expect("submit count");
        counts.push(cnt);
    }

    // Fan-in: sum all per-document counts.
    let refs: Vec<&_> = counts.iter().collect();
    let total = rt.submit("sum", vec![], &refs).expect("submit sum");

    let result = total.wait().expect("workflow failed");
    let total_words = *downcast::<u64>(&result).expect("u64 result");
    println!("word count across {} documents: {total_words}", docs.len());
    assert_eq!(total_words, 22);

    rt.wait_all();
    println!("all tasks drained; endpoints: {:?}", rt.endpoint_labels());
}
