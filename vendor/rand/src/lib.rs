//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic replacement: [`rngs::StdRng`] is a
//! xoshiro256++ generator seeded via SplitMix64. The statistical stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`, but every
//! consumer in this repository only relies on determinism-given-seed, which
//! this shim provides bit-for-bit across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction from a `u64` (the only entry point used here).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), matching rand's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` via widening-multiply rejection-free
/// mapping (Lemire). Bias is < 2^-64 × span — irrelevant for simulation.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(12345);
        let mut b = StdRng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
