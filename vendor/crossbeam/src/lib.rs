//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! MPMC unbounded [`channel`], with cloneable senders *and* receivers and
//! disconnect detection. Built on `std::sync` primitives; FIFO per queue.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half (cloneable, MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (cloneable, MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel lock");
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocked_receivers_wake_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_distributes_all_items() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
