//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Implements `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros with a
//! simple adaptive timer: each benchmark is calibrated to roughly 100 ms of
//! wall time and reports the mean per-iteration latency. No statistics,
//! plots, or baseline storage — just comparable numbers on stderr.

use std::time::{Duration, Instant};

/// How batch setup cost relates to the routine (sizing hint; the shim
/// only distinguishes per-iteration batches from bulk batches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: few iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Timing harness handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until enough samples accumulate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it takes >= 10 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || batch >= 1 << 20 {
                self.elapsed += took;
                self.iters += batch;
                break;
            }
            batch *= 2;
        }
        // Measurement: repeat batches until ~100 ms total.
        while self.elapsed < Duration::from_millis(100) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measure_one = |this: &mut Self| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            this.elapsed += start.elapsed();
            this.iters += 1;
        };
        measure_one(self);
        while self.elapsed < Duration::from_millis(100) {
            measure_one(self);
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh runner.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Runs one named benchmark and prints its mean latency.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        eprintln!(
            "bench {name:<40} {:>12.3?} /iter  ({} iters)",
            b.mean(),
            b.iters
        );
        self
    }
}

/// Groups benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
