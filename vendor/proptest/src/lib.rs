//! Offline shim for the subset of the `proptest` API this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range
//! and tuple strategies, [`strategy::Just`], `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with its deterministic case seed so it can be reproduced by rerunning
//! the test (sampling is a pure function of test name and case index).

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default; our cases are cheap enough to keep it.
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of one generated case (other than plain success).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic per-case RNG (SplitMix64 stream).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a case RNG from the test name and case index.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, span)` (Lemire widening multiply).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among several strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs; mirrors upstream's prelude.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs one property: samples cases, skipping rejects, panicking on failure.
///
/// Used by the [`proptest!`] expansion; not part of the public API surface.
pub fn run_property<F>(test_name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::{TestCaseError, TestRng};
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = config.cases as u64 * 20 + 100;
    while passed < config.cases {
        if attempt >= max_attempts {
            panic!(
                "{test_name}: too many prop_assume! rejections \
                 ({passed}/{} cases passed in {attempt} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(test_name, attempt);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case seed {} failed: {msg}", attempt - 1);
            }
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy, ...)`
/// items, mirroring upstream's surface syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left),
            stringify!($right),
            left,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn prop_map_and_tuples(v in (1u64..10, 2u64..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((3..29).contains(&v));
        }

        #[test]
        fn oneof_selects_each_arm(x in prop_oneof![Just(1u32), Just(2u32), Just(3u32)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0usize..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_skips(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_compiles(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1_000, 0.0f64..1.0);
        let a: Vec<_> = (0..50)
            .map(|i| strat.sample(&mut TestRng::for_case("t", i)))
            .collect();
        let b: Vec<_> = (0..50)
            .map(|i| strat.sample(&mut TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
