//! Offline shim for the subset of the `parking_lot` API this workspace
//! uses: [`Mutex`] (panic-free `lock()` returning the guard directly) and
//! [`Condvar`] (`wait` taking `&mut MutexGuard`). Backed by `std::sync`;
//! poisoning is transparently ignored, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guarded
    /// mutex while waiting.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut done = pair.0.lock();
        let res = pair.1.wait_for(&mut done, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*done, "guard reacquired intact");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
