//! Chaos integration tests: endpoints die mid-run — in the simulator and
//! on the live thread fabric — and workflows must still complete. Plus the
//! determinism gate: a faulted run replayed with the same seed and fault
//! schedule is bit-identical.

use simkit::{SimDuration, SimTime};
use std::time::Duration;
use taskgraph::workloads::stress;
use unifaas::config::{OutageSpec, RetryPolicy};
use unifaas::monitor::HealthPolicy;
use unifaas::prelude::*;
use unifaas::runtime::live::LiveRetryPolicy;

fn chaos_config(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 8))
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 4))
        .endpoint(EndpointConfig::new("Lab", ClusterSpec::lab_cluster(), 4))
        .strategy(strategy)
        .build()
}

fn all_strategies() -> Vec<SchedulingStrategy> {
    vec![
        SchedulingStrategy::Capacity,
        SchedulingStrategy::Locality,
        SchedulingStrategy::Dha { rescheduling: true },
        SchedulingStrategy::Dha {
            rescheduling: false,
        },
    ]
}

#[test]
fn sim_endpoint_killed_mid_run_workflow_completes() {
    // The biggest endpoint dies a third of the way in and comes back much
    // later; every scheduler must drain it, reassign and finish.
    for strategy in all_strategies() {
        let mut cfg = chaos_config(strategy.clone());
        cfg.outages.push(OutageSpec {
            endpoint: 0,
            from: SimTime::from_secs(30),
            to: SimTime::from_secs(600),
        });
        let report = SimRuntime::new(cfg, stress::bag_of_tasks(60, 20.0))
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(report.tasks_completed, 60, "{strategy:?}");
    }
}

#[test]
fn sim_outage_with_failures_and_retries_completes() {
    // Outage + probabilistic task/transfer failures + backoff + straggler
    // watchdog, all at once.
    let mut cfg = chaos_config(SchedulingStrategy::Dha { rescheduling: true });
    cfg.task_failure_prob = 0.05;
    cfg.transfer_failure_prob = 0.05;
    cfg.max_task_attempts = 10;
    cfg.exec_noise_cv = 0.3;
    cfg.retry = RetryPolicy {
        backoff_base: SimDuration::from_secs(2),
        exec_timeout: Some(SimDuration::from_secs(600)),
        ..RetryPolicy::default()
    };
    cfg.health = HealthPolicy::default();
    cfg.outages.push(OutageSpec {
        endpoint: 1,
        from: SimTime::from_secs(50),
        to: SimTime::from_secs(400),
    });
    let report = SimRuntime::new(cfg, stress::bag_of_tasks(80, 25.0))
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, 80);
    assert!(report.failed_attempts > 0, "faults must actually fire");
}

#[test]
fn faulted_run_replays_bit_identically() {
    // The determinism gate: same seed, same fault schedule → the same
    // digest over every sim-deterministic report field.
    let run = || {
        let mut cfg = chaos_config(SchedulingStrategy::Locality);
        cfg.seed = 42;
        cfg.task_failure_prob = 0.1;
        cfg.transfer_failure_prob = 0.05;
        cfg.max_task_attempts = 8;
        cfg.retry.backoff_base = SimDuration::from_secs(5);
        cfg.outages.push(OutageSpec {
            endpoint: 2,
            from: SimTime::from_secs(20),
            to: SimTime::from_secs(200),
        });
        SimRuntime::new(cfg, stress::bag_of_tasks(50, 15.0))
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.determinism_digest(), b.determinism_digest());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.failed_attempts, b.failed_attempts);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.tasks_per_endpoint, b.tasks_per_endpoint);
}

#[test]
fn zero_fault_probabilities_match_unconfigured_run() {
    // Config with the whole fault-tolerance surface present but inert
    // (zero probabilities, no outages) must not shift a single event
    // relative to a config that never mentions faults.
    let dag = || stress::bag_of_tasks(40, 12.0);
    let plain = SimRuntime::new(chaos_config(SchedulingStrategy::Locality), dag())
        .run()
        .unwrap();
    let mut cfg = chaos_config(SchedulingStrategy::Locality);
    cfg.task_failure_prob = 0.0;
    cfg.transfer_failure_prob = 0.0;
    cfg.retry = RetryPolicy {
        backoff_base: SimDuration::from_secs(9),
        backoff_factor: 4.0,
        backoff_max: SimDuration::from_secs(900),
        backoff_jitter: 0.3,
        exec_timeout: None,
    };
    cfg.health = HealthPolicy {
        suspect_after: 1,
        down_after: 2,
        recover_after: 3,
    };
    let knobs = SimRuntime::new(cfg, dag()).run().unwrap();
    assert_eq!(plain.determinism_digest(), knobs.determinism_digest());
}

#[test]
fn live_endpoint_killed_mid_run_workflow_completes() {
    // Two pools; the larger one goes down (probe fails, queued jobs are
    // swallowed) partway through a fan-out. The health-aware placer plus
    // the wait_all watchdog must still finish every task.
    let rt =
        LiveRuntime::with_pool_poll_timeout(&[("big", 4), ("small", 2)], Duration::from_millis(20))
            .with_retry(LiveRetryPolicy {
                max_attempts: 8,
                task_timeout: Some(Duration::from_millis(200)),
                backoff: Duration::from_millis(2),
            });
    rt.register("work", |args| {
        std::thread::sleep(Duration::from_millis(10));
        Ok(args[0].clone())
    });
    let first: Vec<_> = (0..8)
        .map(|i| {
            rt.submit("work", vec![unifaas::runtime::live::value(i as i64)], &[])
                .unwrap()
        })
        .collect();
    // Kill the big pool mid-run: in-flight and queued jobs there are
    // swallowed from now on, and placement must divert the rest.
    rt.pool(0).faults().set_down(true);
    let second: Vec<_> = (8..16)
        .map(|i| {
            rt.submit("work", vec![unifaas::runtime::live::value(i as i64)], &[])
                .unwrap()
        })
        .collect();
    rt.wait_all();
    for (i, f) in first.iter().chain(second.iter()).enumerate() {
        let v = f.wait().unwrap_or_else(|e| panic!("task {i}: {e}"));
        assert_eq!(
            *unifaas::runtime::live::downcast::<i64>(&v).unwrap(),
            i as i64
        );
    }
}

#[test]
fn live_pool_recovers_and_is_reused() {
    let rt = LiveRuntime::with_pool_poll_timeout(
        &[("flaky", 2), ("steady", 1)],
        Duration::from_millis(20),
    )
    .with_retry(LiveRetryPolicy {
        max_attempts: 6,
        task_timeout: Some(Duration::from_millis(150)),
        backoff: Duration::ZERO,
    });
    rt.register("id", |args| Ok(args[0].clone()));
    rt.pool(0).faults().set_down(true);
    let during: Vec<_> = (0..4)
        .map(|i| {
            rt.submit("id", vec![unifaas::runtime::live::value(i as i64)], &[])
                .unwrap()
        })
        .collect();
    rt.wait_all();
    rt.pool(0).faults().set_down(false);
    let after: Vec<_> = (4..8)
        .map(|i| {
            rt.submit("id", vec![unifaas::runtime::live::value(i as i64)], &[])
                .unwrap()
        })
        .collect();
    rt.wait_all();
    for (i, f) in during.iter().chain(after.iter()).enumerate() {
        let v = f.wait().unwrap();
        assert_eq!(
            *unifaas::runtime::live::downcast::<i64>(&v).unwrap(),
            i as i64
        );
    }
}
