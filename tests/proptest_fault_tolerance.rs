//! Property-based tests for the fault-tolerance machinery: under random
//! fault schedules no task is lost or duplicated, attempt budgets are
//! respected, and faulted runs replay deterministically.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use simkit::{SimDuration, SimTime};
use taskgraph::workloads::random::{generate, RandomDagParams};
use unifaas::config::OutageSpec;
use unifaas::prelude::*;

fn arb_strategy() -> impl Strategy<Value = SchedulingStrategy> {
    prop_oneof![
        Just(SchedulingStrategy::Capacity),
        Just(SchedulingStrategy::Locality),
        Just(SchedulingStrategy::Dha { rescheduling: true }),
    ]
}

fn faulted_config(
    strategy: SchedulingStrategy,
    seed: u64,
    task_fail: f64,
    transfer_fail: f64,
    max_attempts: u32,
    backoff_s: u64,
    outage: Option<(usize, u64, u64)>,
) -> Config {
    let mut cfg = Config::builder()
        .endpoint(EndpointConfig::new("a", ClusterSpec::taiyi(), 6))
        .endpoint(EndpointConfig::new("b", ClusterSpec::qiming(), 3))
        .strategy(strategy)
        .seed(seed)
        .build();
    cfg.task_failure_prob = task_fail;
    cfg.transfer_failure_prob = transfer_fail;
    cfg.max_task_attempts = max_attempts;
    cfg.max_transfer_retries = 10;
    cfg.retry.backoff_base = SimDuration::from_secs(backoff_s);
    if let Some((ep, from, to)) = outage {
        cfg.outages.push(OutageSpec {
            endpoint: ep,
            from: SimTime::from_secs(from),
            to: SimTime::from_secs(to),
        });
    }
    cfg
}

proptest! {
    // Each case runs one or two full simulations; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any fault schedule, a run either completes every task exactly
    /// once (no loss, no duplication across requeue/drain/retry paths) or
    /// fails with a task that exhausted its attempt budget.
    #[test]
    fn no_task_lost_or_duplicated_under_faults(
        strategy in arb_strategy(),
        seed in 0u64..10_000,
        task_fail in 0.0f64..0.4,
        transfer_fail in 0.0f64..0.2,
        max_attempts in 1u32..8,
        backoff_s in 0u64..20,
        outage_ep in 0usize..2,
        outage_from in 1u64..100,
        outage_len in prop_oneof![Just(0u64), 10u64..300],
        layers in 1usize..4,
        width in 1usize..8,
    ) {
        let dag = generate(&RandomDagParams {
            n_layers: layers,
            min_width: 1,
            max_width: width,
            edge_prob: 0.3,
            mean_seconds: 15.0,
            mean_output_bytes: 1 << 20,
            seed,
        });
        let n = dag.len();
        let outage = (outage_len > 0)
            .then_some((outage_ep, outage_from, outage_from + outage_len));
        let cfg = faulted_config(
            strategy, seed, task_fail, transfer_fail, max_attempts, backoff_s, outage,
        );
        match SimRuntime::new(cfg, dag).run() {
            Ok(report) => {
                prop_assert_eq!(report.tasks_completed, n, "every task exactly once");
                let per_ep: usize = report.tasks_per_endpoint.iter().map(|(_, c)| *c).sum();
                prop_assert_eq!(
                    per_ep, n,
                    "endpoint tallies must account for each task once"
                );
            }
            Err(UniFaasError::TaskFailed { attempts, .. }) => {
                prop_assert!(
                    attempts.len() <= max_attempts as usize,
                    "attempt budget exceeded: {} > {}",
                    attempts.len(),
                    max_attempts
                );
            }
            Err(UniFaasError::TransferFailed { retries, .. }) => {
                prop_assert!(retries <= 10, "transfer retry budget exceeded");
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }

    /// Any faulted run replays bit-identically from the same seed and
    /// fault schedule.
    #[test]
    fn faulted_runs_replay_deterministically(
        seed in 0u64..10_000,
        task_fail in 0.0f64..0.3,
        outage_len in prop_oneof![Just(0u64), 20u64..200],
    ) {
        let dag = || generate(&RandomDagParams {
            n_layers: 3,
            min_width: 1,
            max_width: 6,
            edge_prob: 0.3,
            mean_seconds: 10.0,
            mean_output_bytes: 1 << 20,
            seed,
        });
        let cfg = || faulted_config(
            SchedulingStrategy::Locality,
            seed,
            task_fail,
            0.05,
            6,
            3,
            (outage_len > 0).then_some((0, 10, 10 + outage_len)),
        );
        let a = SimRuntime::new(cfg(), dag()).run();
        let b = SimRuntime::new(cfg(), dag()).run();
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.determinism_digest(), b.determinism_digest());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "divergent outcomes: {:?} vs {:?}",
                    a.map(|r| r.tasks_completed),
                    b.map(|r| r.tasks_completed),
                )))
            }
        }
    }
}
