//! Integration tests for the live (real-thread) runtime: the programming
//! model of §III executed with actual Rust closures across in-process
//! endpoints.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use unifaas::runtime::live::{downcast, value, AppFuture, LiveRuntime, Value};

/// A miniature montage-shaped pipeline: per-tile project → per-pair diff →
/// global model → per-tile correct → final add.
#[test]
fn montage_shaped_pipeline_produces_correct_result() {
    let rt = LiveRuntime::new(&[("cluster", 4), ("lab", 2)]);
    rt.register("project", |args: &[Value]| {
        let tile = *downcast::<i64>(&args[0]).ok_or("tile")?;
        Ok(value(tile * 10))
    });
    rt.register("diff", |args: &[Value]| {
        let a = *downcast::<i64>(&args[0]).ok_or("a")?;
        let b = *downcast::<i64>(&args[1]).ok_or("b")?;
        Ok(value(b - a))
    });
    rt.register("model", |args: &[Value]| {
        let mut sum = 0i64;
        for v in args {
            sum += *downcast::<i64>(v).ok_or("diff value")?;
        }
        Ok(value(sum))
    });
    rt.register("correct", |args: &[Value]| {
        let projected = *downcast::<i64>(&args[0]).ok_or("projected")?;
        let model = *downcast::<i64>(&args[1]).ok_or("model")?;
        Ok(value(projected - model))
    });
    rt.register("add", |args: &[Value]| {
        let mut sum = 0i64;
        for v in args {
            sum += *downcast::<i64>(v).ok_or("corrected value")?;
        }
        Ok(value(sum))
    });

    let n = 8i64;
    let projections: Vec<AppFuture> = (0..n)
        .map(|i| {
            rt.submit_sized("project", vec![value(i)], &[], 8 << 20)
                .unwrap()
        })
        .collect();
    let diffs: Vec<AppFuture> = (0..n as usize - 1)
        .map(|i| {
            rt.submit("diff", vec![], &[&projections[i], &projections[i + 1]])
                .unwrap()
        })
        .collect();
    let diff_refs: Vec<&AppFuture> = diffs.iter().collect();
    let model = rt.submit("model", vec![], &diff_refs).unwrap();
    let corrected: Vec<AppFuture> = projections
        .iter()
        .map(|p| rt.submit("correct", vec![], &[p, &model]).unwrap())
        .collect();
    let corrected_refs: Vec<&AppFuture> = corrected.iter().collect();
    let total = rt.submit("add", vec![], &corrected_refs).unwrap();

    // model = sum of diffs = 10*(n-1) = 70; corrected_i = 10i - 70;
    // total = 10*(0+..+7) - 8*70 = 280 - 560 = -280.
    let v = total.wait().unwrap();
    assert_eq!(*downcast::<i64>(&v).unwrap(), -280);
    rt.wait_all();
}

#[test]
fn many_small_tasks_saturate_all_endpoints() {
    let rt = LiveRuntime::new(&[("a", 3), ("b", 3)]);
    let counter = Arc::new(AtomicUsize::new(0));
    {
        let counter = Arc::clone(&counter);
        rt.register("tick", move |_args: &[Value]| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(value(()))
        });
    }
    let futures: Vec<AppFuture> = (0..500)
        .map(|_| rt.submit("tick", vec![], &[]).unwrap())
        .collect();
    rt.wait_all();
    assert_eq!(counter.load(Ordering::SeqCst), 500);
    assert!(futures.iter().all(|f| f.is_done()));
}

#[test]
fn deep_dynamic_chain_built_from_results() {
    // Dynamic DAG: each next submission depends on the *result* of the
    // previous one (the workflow shape is decided at runtime).
    let rt = LiveRuntime::new(&[("solo", 2)]);
    rt.register("inc", |args: &[Value]| {
        let x = *downcast::<i64>(&args[0]).ok_or("x")?;
        Ok(value(x + 1))
    });
    let mut fut = rt.submit("inc", vec![value(0i64)], &[]).unwrap();
    // Decide dynamically how far to chain based on intermediate values.
    loop {
        let v = *downcast::<i64>(&fut.wait().unwrap()).unwrap();
        if v >= 10 {
            break;
        }
        fut = rt.submit("inc", vec![], &[&fut]).unwrap();
    }
    let final_v = *downcast::<i64>(&fut.wait().unwrap()).unwrap();
    assert_eq!(final_v, 10);
}

#[test]
fn transfer_bandwidth_penalizes_cross_endpoint_dataflow() {
    // With a very slow simulated WAN, a consumer placed away from its
    // producer pays real wall time; the locality-aware placer avoids it
    // when possible.
    let rt =
        LiveRuntime::new(&[("x", 1), ("y", 1)]).with_transfer_bandwidth(64.0 * 1024.0 * 1024.0);
    rt.register("produce", |_| Ok(value(42i64)));
    rt.register("consume", |args: &[Value]| {
        Ok(value(*downcast::<i64>(&args[0]).ok_or("v")? * 2))
    });
    let t0 = std::time::Instant::now();
    let p = rt
        .submit_sized("produce", vec![], &[], 32 << 20) // 32 MB output
        .unwrap();
    let c = rt.submit("consume", vec![], &[&p]).unwrap();
    let v = c.wait().unwrap();
    assert_eq!(*downcast::<i64>(&v).unwrap(), 84);
    // Locality placement should avoid the 0.5 s simulated transfer: both
    // endpoints were idle, and the producer's endpoint holds the bytes.
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(450),
        "took {:?} — consumer was likely placed remotely",
        t0.elapsed()
    );
}
