//! Integration tests for the tracing/telemetry layer: a traced run must
//! produce per-task lifecycle spans on per-endpoint tracks, one scheduler
//! decision record per DHA placement and loadable Perfetto/JSONL exports —
//! and tracing must never perturb the simulation itself (the reports of a
//! traced and an untraced run are bit-identical).
//!
//! Also exercises the release-mode counter-reconciliation harness
//! (`Config::validate_counters`), which promotes the debug-only internal
//! asserts into a check CI can run on release builds.

use fedci::hardware::ClusterSpec;
use taskgraph::workloads::drug;
use unifaas::config::ScalingConfig;
use unifaas::prelude::*;
use unifaas::trace::DecisionKind;

// Deliberately small worker pools so DHA must spread the workload across
// all four endpoints — that's what makes cross-endpoint transfers (and
// per-endpoint tracks in the export) appear.
fn testbed(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 16))
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 8))
        .endpoint(EndpointConfig::new("Dept", ClusterSpec::dept_cluster(), 4))
        .endpoint(EndpointConfig::new("Lab", ClusterSpec::lab_cluster(), 4))
        .strategy(strategy)
        .build()
}

fn drug_dag() -> Dag {
    drug::generate(&drug::DrugParams::small(60)) // 241 tasks
}

#[test]
fn traced_dha_run_records_a_decision_per_placement() {
    let dag = drug_dag();
    let n_tasks = dag.len();
    let report = SimRuntime::new(testbed(SchedulingStrategy::Dha { rescheduling: true }), dag)
        .with_trace(TraceConfig::default())
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, n_tasks);
    let trace = report.trace.as_ref().expect("traced run returns a trace");

    // Every task that became ready got exactly one Initial placement record;
    // rescheduling may add Steal records on top.
    let initial = trace
        .decisions
        .iter()
        .filter(|d| d.kind == DecisionKind::Initial)
        .count();
    assert_eq!(initial, n_tasks, "one Initial decision per task");
    assert_eq!(trace.dropped_decisions, 0);

    for d in &trace.decisions {
        assert!(!d.candidates.is_empty(), "decision has a candidate set");
        assert!((d.chosen.0 as usize) < 4, "chosen endpoint in range");
        assert!(
            d.candidates.iter().any(|c| c.ep == d.chosen),
            "chosen endpoint appears among the candidates"
        );
        assert!(d.chosen_eft_s.is_finite());
        // The winner was actually evaluated, never pruned.
        let winner = d.candidates.iter().find(|c| c.ep == d.chosen).unwrap();
        assert!(winner.eft_s.is_some(), "winner has a full EFT evaluation");
    }

    // The drug pipeline moves data between stages, so the data plane must
    // have recorded transfer rationale too.
    assert!(!trace.transfers.is_empty(), "transfer records present");
    for t in &trace.transfers {
        assert!(t.bytes > 0);
        assert!(t.replica_candidates >= 1);
        assert!(t.attempt >= 1);
        assert_ne!(t.src, t.dst);
    }
}

#[test]
fn perfetto_export_is_balanced_and_has_endpoint_tracks() {
    let dag = drug_dag();
    let report = SimRuntime::new(testbed(SchedulingStrategy::Dha { rescheduling: true }), dag)
        .with_trace(TraceConfig::default())
        .run()
        .unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert_eq!(trace.tracer.dropped(), 0, "default ring holds a small run");

    let mut buf = Vec::new();
    trace.export_perfetto(&mut buf).unwrap();
    let s = String::from_utf8(buf).unwrap();

    // Structurally a Chrome trace_event JSON object.
    assert!(s.starts_with("{\"traceEvents\":["));
    assert!(
        s.trim_end().ends_with("]}"),
        "closed JSON: ...{}",
        &s[s.len() - 20..]
    );

    // One process_name metadata record per track; all four endpoints appear.
    for label in ["Taiyi", "Qiming", "Dept", "Lab"] {
        assert!(
            s.contains(&format!("\"args\":{{\"name\":\"{label}\"}}")),
            "endpoint track {label} named via process_name metadata"
        );
    }

    // Async spans balance: every `b` has a matching `e` (finish() closes
    // dangling spans before export).
    let begins = s.matches("\"ph\":\"b\"").count();
    let ends = s.matches("\"ph\":\"e\"").count();
    assert_eq!(begins, ends, "balanced async span events");
    assert!(begins > 0);

    // The lifecycle stages show up as span categories.
    for stage in ["ready", "staging", "dispatched", "executing", "polled"] {
        assert!(
            s.contains(&format!("\"cat\":\"{stage}\"")),
            "lifecycle stage {stage} present"
        );
    }

    // JSONL sibling: every line is a self-contained JSON object.
    let mut buf = Vec::new();
    trace.export_jsonl(&mut buf).unwrap();
    let jsonl = String::from_utf8(buf).unwrap();
    assert!(jsonl.lines().count() >= trace.tracer.len());
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
    assert!(jsonl.contains("\"kind\":\"decision\""));
    assert!(jsonl.contains("\"kind\":\"transfer\""));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let dag = drug_dag();
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let base = SimRuntime::new(testbed(strategy.clone()), dag.clone())
        .run()
        .unwrap();
    let traced = SimRuntime::new(testbed(strategy), dag)
        .with_trace(TraceConfig::default())
        .run()
        .unwrap();
    // Bit-identical outcomes: tracing must not touch RNG draws, event order
    // or any scheduling decision.
    assert_eq!(base.makespan, traced.makespan);
    assert_eq!(base.transfer_bytes, traced.transfer_bytes);
    assert_eq!(base.tasks_per_endpoint, traced.tasks_per_endpoint);
    assert_eq!(base.events_processed, traced.events_processed);
    assert_eq!(base.failed_attempts, traced.failed_attempts);
    assert!(base.trace.is_none());
    assert!(traced.trace.is_some());
}

#[test]
fn counter_validation_runs_under_faults_and_scaling() {
    // `validate_counters(true)` turns the debug-only reconciliation asserts
    // into release-mode checks: every periodic tick full-scans task states
    // against the transition-maintained counters and panics on drift. A
    // fault-heavy elastic run exercises the transitions most likely to
    // drift (retries, rescheduling, commission/decommission).
    let dag = drug_dag();
    let n_tasks = dag.len();
    let cfg = Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 32).elastic(8, 32, 4))
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 16).elastic(4, 16, 4))
        .strategy(SchedulingStrategy::Dha { rescheduling: true })
        .scaling(ScalingConfig {
            enabled: true,
            ..ScalingConfig::default()
        })
        .faults(0.05, 0.05)
        .validate_counters(true)
        .build();
    let report = SimRuntime::new(cfg, dag)
        .with_trace(TraceConfig::default())
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, n_tasks);
    // The fault probabilities virtually guarantee retries, so the fault
    // instants should be visible in the trace.
    let trace = report.trace.as_ref().unwrap();
    assert!(report.failed_attempts > 0 || trace.transfers.iter().all(|t| t.attempt == 1));
}
