//! End-to-end tests for the metrics observatory: registry exposition,
//! predictor calibration, fault-path attempt accounting and the live
//! scrape server.

use fedci::hardware::ClusterSpec;
use fedci::network::{Link, NetworkTopology};
use simkit::metrics::parse_prometheus;
use taskgraph::{Dag, TaskId, TaskSpec};
use unifaas::config::{Config, EndpointConfig, SchedulingStrategy};
use unifaas::profile::{OracleProfiler, ScaledPredictor};
use unifaas::runtime::live::LiveRuntime;
use unifaas::SimRuntime;

fn two_site(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
        .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
        .strategy(strategy)
        .build()
}

fn fan_dag(width: usize, secs: f64) -> Dag {
    let mut dag = Dag::new();
    let f = dag.register_function("work");
    let g = dag.register_function("merge");
    let layer: Vec<TaskId> = (0..width)
        .map(|_| dag.add_task(TaskSpec::compute(f, secs).with_output_bytes(1 << 20), &[]))
        .collect();
    dag.add_task(TaskSpec::compute(g, secs), &layer);
    dag
}

/// Metrics collection must not perturb the simulation: same seed, same
/// digest, with or without the registry.
#[test]
fn metrics_do_not_change_the_determinism_digest() {
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let plain = SimRuntime::new(two_site(strategy.clone()), fan_dag(20, 5.0))
        .run()
        .unwrap();
    let metered = SimRuntime::new(two_site(strategy), fan_dag(20, 5.0))
        .with_metrics(true)
        .run()
        .unwrap();
    assert_eq!(
        plain.determinism_digest(),
        metered.determinism_digest(),
        "metrics must be zero-cost on the simulated timeline"
    );
    assert!(plain.metrics.is_none() && plain.calibration.is_empty());
    let reg = metered
        .metrics
        .as_deref()
        .expect("metered run keeps its registry");
    assert!(!metered.calibration.is_empty());
    // And the dump is valid Prometheus exposition.
    let samples = parse_prometheus(&reg.render_prometheus()).expect("parses");
    assert!(samples
        .iter()
        .any(|s| s.name == "unifaas_tasks_completed_total"));
}

/// The acceptance workload for the calibration table: a predictor that
/// systematically doubles execution estimates must show up as ~100% MAPE
/// and strong positive bias on every per-function exec row.
#[test]
fn biased_predictor_shows_up_in_calibration() {
    let cfg = two_site(SchedulingStrategy::Dha {
        rescheduling: false,
    });
    let net = NetworkTopology::uniform(cfg.endpoints.len(), Link::wan());
    let oracle = OracleProfiler::new(net, cfg.transfer.default_params());
    let report = SimRuntime::new(cfg, fan_dag(30, 10.0))
        .with_metrics(true)
        .with_predictor(Box::new(ScaledPredictor::new(oracle, 2.0, 1.0)))
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, 31);
    let exec_rows: Vec<_> = report
        .calibration
        .iter()
        .filter(|r| r.model.starts_with("exec:"))
        .collect();
    assert_eq!(
        exec_rows.len(),
        2,
        "one row per function: {:?}",
        report.calibration
    );
    for row in exec_rows {
        // predicted = 2×actual (modulo exec noise, cv 0.02): MAPE ≈ 1.0.
        assert!(
            (row.mape - 1.0).abs() < 0.15,
            "{}: MAPE {} not ≈ 1.0",
            row.model,
            row.mape
        );
        assert!(
            row.bias > 0.8,
            "{}: bias {} not strongly positive",
            row.model,
            row.bias
        );
        assert!(
            row.p95_abs_err > 0.8,
            "{}: p95 {}",
            row.model,
            row.p95_abs_err
        );
    }
    // Every observation breaches the 25% drift threshold: the drift
    // counter must equal the exec observation count.
    let reg = report.metrics.as_deref().unwrap();
    let samples = parse_prometheus(&reg.render_prometheus()).unwrap();
    let drift = samples
        .iter()
        .find(|s| s.name == "unifaas_predictor_drift_total")
        .expect("drift counter exported");
    assert!(
        drift.value >= report.tasks_completed as f64,
        "drift {} < completed {}",
        drift.value,
        report.tasks_completed
    );
}

/// Satellite: fault-path metric audit. Under a seeded task-failure
/// schedule every attempt — first try or retry re-dispatch — must bump
/// the dispatch counter exactly once, and per-task latency stages must be
/// sampled exactly once per *completed* task.
#[test]
fn attempt_counters_reconcile_under_seeded_faults() {
    let mut cfg = two_site(SchedulingStrategy::Locality);
    cfg.task_failure_prob = 0.15;
    cfg.max_task_attempts = 10;
    cfg.seed = 7;
    let report = SimRuntime::new(cfg, fan_dag(40, 5.0))
        .with_metrics(true)
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, 41);
    assert!(report.failed_attempts > 0, "seed 7 at p=0.15 must fault");

    let reg = report.metrics.as_deref().unwrap();
    let samples = parse_prometheus(&reg.render_prometheus()).unwrap();
    let sum_of = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    // Every attempt is one dispatch; every failure is re-dispatched (no
    // outages configured, so nothing is drained without a new attempt).
    assert_eq!(
        sum_of("unifaas_task_dispatches_total") as usize,
        report.tasks_completed + report.failed_attempts,
        "dispatches must count one per attempt"
    );
    assert_eq!(
        sum_of("unifaas_task_attempt_failures_total") as usize,
        report.failed_attempts
    );
    assert_eq!(
        sum_of("unifaas_tasks_completed_total") as usize,
        report.tasks_completed
    );
    // Stage histograms sample once per completed task — retries must not
    // double-sample.
    let stage_counts: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "unifaas_task_stage_seconds_count")
        .map(|s| s.value)
        .collect();
    assert_eq!(stage_counts.len(), 5, "five latency stages");
    for c in stage_counts {
        assert_eq!(
            c as u64, report.latency.count,
            "one sample per completed task"
        );
    }
    assert_eq!(report.latency.count as usize, report.tasks_completed);
}

/// A retried task's staging stage must be measured from its *latest*
/// ready time, not its first: per-attempt stages can never exceed the
/// makespan once summed per task.
#[test]
fn retry_latency_stages_cover_only_the_final_attempt() {
    let mut cfg = two_site(SchedulingStrategy::Locality);
    cfg.task_failure_prob = 0.3;
    cfg.max_task_attempts = 20;
    cfg.seed = 11;
    let report = SimRuntime::new(cfg, fan_dag(30, 5.0)).run().unwrap();
    assert!(report.failed_attempts > 0);
    let l = &report.latency;
    let per_task_sum =
        (l.staging_s + l.submission_s + l.queue_s + l.execution_s + l.polling_s) / l.count as f64;
    assert!(
        per_task_sum <= report.makespan.as_secs_f64(),
        "mean per-task stage sum {per_task_sum} exceeds makespan {} — a retry \
         double-counted a stage across attempts",
        report.makespan.as_secs_f64()
    );
}

/// Satellite: scrape-server smoke test. Bind an ephemeral port, GET
/// /metrics, expect 200 with a non-empty, parseable body.
#[test]
fn live_runtime_scrape_smoke() {
    use std::io::{Read, Write};

    let rt = LiveRuntime::new(&[("a", 2), ("b", 1)]);
    rt.register("noop", |_args| Ok(unifaas::runtime::live::value(0u64)));
    let futs: Vec<_> = (0..4)
        .map(|_| rt.submit("noop", vec![], &[]).unwrap())
        .collect();
    rt.wait_all();
    for f in futs {
        f.wait().unwrap();
    }

    let server = rt
        .serve_metrics("127.0.0.1:0")
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");

    assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body");
    assert!(!body.trim().is_empty(), "scrape body must be non-empty");
    let samples = parse_prometheus(body).expect("body parses as Prometheus text");
    let completed: f64 = samples
        .iter()
        .filter(|s| s.name == "fedci_pool_jobs_completed_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(completed, 4.0, "scrape reflects the pool counters");
    assert!(samples
        .iter()
        .any(|s| s.name == "unifaas_outstanding_tasks" && s.value == 0.0));
}

/// Satellite regression: a stalled scrape client must not wedge the
/// single-threaded scrape server. The first client dribbles a partial
/// request head and then goes silent; the per-connection deadline must
/// disconnect it so a well-behaved scraper behind it still gets served
/// promptly.
#[test]
fn stalled_scrape_client_cannot_wedge_the_server() {
    use simkit::metrics::{MetricsRegistry, MetricsServer};
    use std::io::{Read, Write};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    let mut reg = MetricsRegistry::new();
    let g = reg.gauge("stall_test_gauge", "marker", &[]);
    reg.set(g, 42.0);
    let server =
        MetricsServer::start("127.0.0.1:0", Arc::new(Mutex::new(reg)), None).expect("bind");
    let addr = server.local_addr();

    // The villain: opens a connection, sends two bytes of request head,
    // then stalls forever (held open for the whole test).
    let mut villain = std::net::TcpStream::connect(addr).expect("connect");
    villain.write_all(b"GE").expect("partial head");

    // Give the server a beat to accept the villain first, so the honest
    // client genuinely queues behind the stall.
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    let mut honest = std::net::TcpStream::connect(addr).expect("connect");
    honest
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    honest.read_to_string(&mut response).expect("read response");
    let waited = start.elapsed();

    assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    assert!(
        response.contains("stall_test_gauge"),
        "body missing the marker gauge: {response}"
    );
    // The villain's budget is 2s; anything wildly past that means the
    // deadline did not fire and we only got lucky.
    assert!(
        waited < Duration::from_secs(10),
        "honest scraper waited {waited:?} behind the stalled client"
    );
    drop(villain);
}
