//! End-to-end tests for the run journal, divergence doctor, flight
//! recorder and decision-digest folding: journals must be bit-identical
//! across engine flavors, observation must never perturb the simulated
//! timeline, and an injected single-event perturbation must be localized
//! to the exact record.

use fedci::hardware::ClusterSpec;
use simkit::journal::Journal;
use taskgraph::{Dag, TaskId, TaskSpec};
use unifaas::config::{Config, EndpointConfig, SchedulingStrategy};
use unifaas::flight::FlightConfig;
use unifaas::obs::{doctor, perturb_journal, render_doctor, DoctorReport};
use unifaas::SimRuntime;

fn site_config(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
        .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
        .strategy(strategy)
        .build()
}

fn diamond_dag(width: usize) -> Dag {
    let mut dag = Dag::new();
    let f = dag.register_function("work");
    let g = dag.register_function("merge");
    let root = dag.add_task(TaskSpec::compute(f, 1.0).with_output_bytes(1 << 20), &[]);
    let layer: Vec<TaskId> = (0..width)
        .map(|i| {
            dag.add_task(
                TaskSpec::compute(f, 2.0 + (i % 5) as f64).with_output_bytes(1 << 20),
                &[root],
            )
        })
        .collect();
    dag.add_task(TaskSpec::compute(g, 1.0), &layer);
    dag
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ufjournal-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Wheel, heap and sharded engines of the same seed must write
/// bit-identical journals, and the doctor must say so.
#[test]
fn journals_identical_across_engine_flavors() {
    let dir = tmp_dir("flavors");
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let paths = [
        dir.join("wheel.journal"),
        dir.join("heap.journal"),
        dir.join("sharded.journal"),
    ];
    let configs = [
        site_config(strategy.clone()),
        Config::builder()
            .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
            .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
            .strategy(strategy.clone())
            .engine_reference_queue(true)
            .build(),
        Config::builder()
            .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
            .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
            .strategy(strategy)
            .engine_shards(3)
            .build(),
    ];
    let mut digests = Vec::new();
    for (cfg, path) in configs.into_iter().zip(&paths) {
        let report = SimRuntime::new(cfg, diamond_dag(24))
            .with_journal(path)
            .run()
            .unwrap();
        let summary = report.journal.expect("journaled run reports a summary");
        assert!(summary.records > 0);
        digests.push((report.determinism_digest(), summary));
    }
    assert_eq!(digests[0], digests[1], "wheel vs heap");
    assert_eq!(digests[0], digests[2], "single vs sharded");

    let wheel = Journal::open(&paths[0]).unwrap();
    assert!(wheel.clean_close(), "finished run seals its journal");
    assert_eq!(wheel.total_records(), digests[0].1.records);
    assert_eq!(wheel.final_digest(), digests[0].1.digest);
    for other in &paths[1..] {
        let report = doctor(&wheel, &Journal::open(other).unwrap());
        assert!(report.is_identical(), "{}", render_doctor(&report));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Journaling (and its decision notes) must not perturb the simulation:
/// same seed with and without a journal gives the same digest and report.
#[test]
fn journaling_does_not_change_the_determinism_digest() {
    let dir = tmp_dir("zerocost");
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let plain = SimRuntime::new(site_config(strategy.clone()), diamond_dag(20))
        .run()
        .unwrap();
    let journaled = SimRuntime::new(site_config(strategy), diamond_dag(20))
        .with_journal(dir.join("run.journal"))
        .run()
        .unwrap();
    assert_eq!(
        plain.determinism_digest(),
        journaled.determinism_digest(),
        "journaling must be invisible to the simulated timeline"
    );
    assert!(plain.journal.is_none());
    assert!(journaled.journal.is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// A one-microsecond perturbation injected mid-journal must be localized
/// by the doctor to exactly that record, with task context attached.
#[test]
fn doctor_localizes_injected_perturbation() {
    let dir = tmp_dir("perturb");
    let base = dir.join("base.journal");
    SimRuntime::new(
        site_config(SchedulingStrategy::Dha { rescheduling: true }),
        diamond_dag(24),
    )
    .with_journal(&base)
    .run()
    .unwrap();
    let a = Journal::open(&base).unwrap();
    let target = a.total_records() / 2;
    let perturbed = dir.join("perturbed.journal");
    perturb_journal(&base, &perturbed, target).unwrap();
    let report = doctor(&a, &Journal::open(&perturbed).unwrap());
    let DoctorReport::Diverged(d) = &report else {
        panic!("expected divergence:\n{}", render_doctor(&report));
    };
    assert_eq!(d.index, target, "exact record localized");
    let (ra, rb) = (d.a.unwrap(), d.b.unwrap());
    assert_eq!(ra.at_us + 1, rb.at_us, "the injected 1us bump");
    assert_eq!((ra.seq, ra.kind, ra.a, ra.b), (rb.seq, rb.kind, rb.a, rb.b));
    std::fs::remove_dir_all(&dir).ok();
}

/// The decision digest is deterministic across engine flavors, stable
/// across repeats, and folded into the determinism digest only when the
/// config asks for it.
#[test]
fn decision_digest_is_deterministic_and_config_gated() {
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let run = |digest_on: bool, shards: usize| {
        let cfg = Config::builder()
            .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
            .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
            .strategy(strategy.clone())
            .digest_decisions(digest_on)
            .engine_shards(shards)
            .build();
        SimRuntime::new(cfg, diamond_dag(20)).run().unwrap()
    };
    let off = run(false, 1);
    assert!(off.decision_digest.is_none(), "default off");
    let on1 = run(true, 1);
    let on2 = run(true, 1);
    let on_sharded = run(true, 3);
    let d = on1.decision_digest.expect("enabled run reports the digest");
    assert_eq!(on2.decision_digest, Some(d), "repeatable");
    assert_eq!(on_sharded.decision_digest, Some(d), "engine-independent");
    // Folding is config-gated: the event-stream components are unchanged,
    // so the combined digests differ exactly by the folded stream.
    assert_eq!(off.makespan, on1.makespan);
    assert_eq!(off.events_processed, on1.events_processed);
    assert_ne!(
        off.determinism_digest(),
        on1.determinism_digest(),
        "enabled runs fold the decision stream into the digest"
    );
    assert_eq!(on1.determinism_digest(), on2.determinism_digest());
}

/// The flight recorder observes a real run without perturbing it and
/// reports snapshots plus the recent-event ring.
#[test]
fn flight_recorder_observes_without_perturbing() {
    let strategy = SchedulingStrategy::Dha { rescheduling: true };
    let plain = SimRuntime::new(site_config(strategy.clone()), diamond_dag(20))
        .run()
        .unwrap();
    let flown = SimRuntime::new(site_config(strategy), diamond_dag(20))
        .with_flight(FlightConfig {
            snapshot_every: 50,
            ring_capacity: 32,
            ..FlightConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(plain.determinism_digest(), flown.determinism_digest());
    let fr = flown.flight.as_deref().expect("flight report present");
    assert!(!fr.snapshots.is_empty(), "snapshots taken");
    assert_eq!(fr.recent.len(), 32, "ring filled");
    assert_eq!(fr.stalls, 0, "healthy run");
    let last = fr.snapshots.last().unwrap();
    assert!(last.events > 0 && last.events_per_sec > 0.0);
    assert!(last.virtual_s > 0.0);
    // Ring sequence numbers are contiguous and end at the last delivery.
    let seqs: Vec<u64> = fr.recent.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    assert_eq!(*seqs.last().unwrap(), flown.events_processed);
}
