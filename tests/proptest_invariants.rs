//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use simkit::{EventQueue, SimTime, TimeSeries};
use taskgraph::partition::{capacity_partition, proportional_counts};
use taskgraph::rank::{priorities, FnCosts};
use taskgraph::traverse::{critical_path_seconds, dfs_order, levels, topological_order};
use taskgraph::workloads::random::{generate, RandomDagParams};
use taskgraph::TaskId;

fn arb_dag() -> impl Strategy<Value = taskgraph::Dag> {
    (1usize..6, 1usize..8, 0.05f64..0.9, 0u64..1_000).prop_map(
        |(layers, width, edge_prob, seed)| {
            generate(&RandomDagParams {
                n_layers: layers,
                min_width: 1,
                max_width: width,
                edge_prob,
                mean_seconds: 10.0,
                mean_output_bytes: 1 << 20,
                seed,
            })
        },
    )
}

proptest! {
    #[test]
    fn topological_order_respects_all_edges(dag in arb_dag()) {
        let order = topological_order(&dag);
        prop_assert_eq!(order.len(), dag.len());
        let pos: std::collections::HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        for t in dag.task_ids() {
            for p in dag.preds(t) {
                prop_assert!(pos[p] < pos[&t]);
            }
        }
    }

    #[test]
    fn dfs_order_is_a_permutation(dag in arb_dag()) {
        let order = dfs_order(&dag);
        let mut ids: Vec<u32> = order.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..dag.len() as u32).collect();
        prop_assert_eq!(ids, expect);
    }

    #[test]
    fn heft_priorities_dominate_successors(dag in arb_dag()) {
        let costs = FnCosts {
            staging: |_| 0.5,
            execution: |t: TaskId| dag.spec(t).compute_seconds,
        };
        let prio = priorities(&dag, &costs);
        for t in dag.task_ids() {
            for s in dag.succs(t) {
                prop_assert!(
                    prio[t.index()] > prio[s.index()],
                    "priority({}) = {} must exceed priority({}) = {}",
                    t, prio[t.index()], s, prio[s.index()]
                );
            }
        }
    }

    #[test]
    fn levels_increase_along_edges(dag in arb_dag()) {
        let lv = levels(&dag);
        for t in dag.task_ids() {
            for p in dag.preds(t) {
                prop_assert!(lv[p.index()] < lv[t.index()]);
            }
        }
    }

    #[test]
    fn critical_path_bounds_total_compute(dag in arb_dag()) {
        let cp = critical_path_seconds(&dag);
        let total = dag.total_compute_seconds();
        let max_task = dag
            .task_ids()
            .map(|t| dag.spec(t).compute_seconds)
            .fold(0.0f64, f64::max);
        prop_assert!(cp <= total + 1e-9);
        prop_assert!(cp >= max_task - 1e-9);
    }

    #[test]
    fn proportional_counts_sum_and_respect_zeros(
        m in 0usize..5_000,
        caps in proptest::collection::vec(0usize..500, 1..8)
    ) {
        prop_assume!(caps.iter().sum::<usize>() > 0);
        let counts = proportional_counts(m, &caps);
        prop_assert_eq!(counts.iter().sum::<usize>(), m);
        for (count, cap) in counts.iter().zip(&caps) {
            if *cap == 0 {
                prop_assert_eq!(*count, 0);
            }
        }
        // Largest-remainder keeps every endpoint within 1 of its exact
        // share (when every endpoint has capacity).
        if caps.iter().all(|c| *c > 0) {
            let total: usize = caps.iter().sum();
            for (count, cap) in counts.iter().zip(&caps) {
                let exact = m as f64 * *cap as f64 / total as f64;
                prop_assert!((*count as f64 - exact).abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn capacity_partition_assigns_every_task(dag in arb_dag(), caps in proptest::collection::vec(1usize..100, 1..5)) {
        let assignment = capacity_partition(&dag, &caps);
        prop_assert_eq!(assignment.len(), dag.len());
        for &a in &assignment {
            prop_assert!(a < caps.len());
        }
        let counts = proportional_counts(dag.len(), &caps);
        let mut observed = vec![0usize; caps.len()];
        for &a in &assignment {
            observed[a] += 1;
        }
        prop_assert_eq!(observed, counts);
    }

    #[test]
    fn event_queue_pops_sorted_with_fifo_ties(times in proptest::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO tie-break violated");
                }
            }
            last = Some((at, idx));
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn time_series_integral_matches_mean(samples in proptest::collection::vec((0u64..1_000, 0.0f64..100.0), 1..50)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut series = TimeSeries::new();
        for (t, v) in &sorted {
            series.record(SimTime::from_secs(*t), *v);
        }
        let from = SimTime::ZERO;
        let to = SimTime::from_secs(2_000);
        let integral = series.integral(from, to);
        let mean = series.mean_over(from, to);
        prop_assert!((integral - mean * 2_000.0).abs() < 1e-6);
        // The integral is bounded by max value × span.
        let max = sorted.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        prop_assert!(integral <= max * 2_000.0 + 1e-6);
        prop_assert!(integral >= 0.0);
    }

    #[test]
    fn calibrate_hits_arbitrary_targets(
        dag in arb_dag(),
        secs in 1.0f64..100_000.0,
        bytes in 1u64..1_000_000_000
    ) {
        let mut dag = dag;
        prop_assume!(dag.total_data_bytes() > 0);
        taskgraph::workloads::calibrate(&mut dag, secs, Some(bytes));
        prop_assert!((dag.total_compute_seconds() - secs).abs() / secs < 1e-9);
        // Byte rounding error is at most one byte per task.
        let diff = (dag.total_data_bytes() as i64 - bytes as i64).unsigned_abs();
        prop_assert!(diff <= 2 * dag.len() as u64);
    }
}

mod model_properties {
    use super::*;
    use perfmodel::{Dataset, LinearRegression, Regressor, Trainer};

    proptest! {
        #[test]
        fn ols_recovers_noiseless_lines(
            intercept in -100.0f64..100.0,
            slope in -10.0f64..10.0,
            xs in proptest::collection::vec(-50.0f64..50.0, 3..40)
        ) {
            // Need at least two distinct x values for identifiability.
            let distinct = xs.iter().any(|x| (x - xs[0]).abs() > 1.0);
            prop_assume!(distinct);
            let mut data = Dataset::new(1);
            for &x in &xs {
                data.push(&[x], intercept + slope * x);
            }
            let model = LinearRegression::default().fit(&data).unwrap();
            for &x in &xs {
                let want = intercept + slope * x;
                prop_assert!(
                    (model.predict(&[x]) - want).abs() < 1e-3,
                    "x={x}: got {} want {want}", model.predict(&[x])
                );
            }
        }

        #[test]
        fn forest_predictions_stay_within_target_range(
            seed in 0u64..500,
            n in 10usize..80
        ) {
            use perfmodel::{RandomForest, RandomForestParams};
            let mut rng = simkit::SimRng::seed_from_u64(seed);
            let mut data = Dataset::new(2);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for _ in 0..n {
                let x = rng.uniform(0.0, 10.0);
                let y = rng.uniform(0.0, 10.0);
                let target = rng.uniform(1.0, 100.0);
                lo = lo.min(target);
                hi = hi.max(target);
                data.push(&[x, y], target);
            }
            let forest = RandomForest::fit(&data, &RandomForestParams {
                n_trees: 5,
                seed,
                ..Default::default()
            }).unwrap();
            // Averages of leaf means can never leave the observed range.
            for _ in 0..20 {
                let p = forest.predict(&[rng.uniform(-5.0, 15.0), rng.uniform(-5.0, 15.0)]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
            }
        }
    }
}
