//! Property test: the data manager's indexed pair tables and maintained
//! counters agree with a flat reference model under arbitrary operation
//! sequences.
//!
//! The reference model re-implements the §IV-E staging contract in the
//! most naive way possible — flat `Vec`s, recomputed aggregates — and the
//! test drives both it and the real [`DataManager`] through random
//! interleavings of object registration, staging requests and transfer
//! completions (with fault-injector draws). Checked on every step:
//!
//! * **dedup** — a request for an object already in flight to the same
//!   destination joins it and starts nothing new;
//! * **per-pair concurrency cap** — at most `max_concurrent` transfers
//!   active per ordered endpoint pair;
//! * **FIFO order** — transfers on a pair start in request order;
//! * **retry / backlog restore** — a failed attempt below the retry limit
//!   requeues and keeps its bytes on the pair; exhaustion fails exactly
//!   the interested tasks;
//! * **accounting** — `bytes_moved`, `transfers_outstanding` and every
//!   pair's `backlog_bytes` equal the model's recomputed values. (In debug
//!   builds `transfers_outstanding` additionally self-reconciles against a
//!   scan of the transfer log, so the maintained counters are checked
//!   twice over.)

use fedci::endpoint::EndpointId;
use fedci::network::{Link, NetworkTopology};
use fedci::storage::DataId;
use fedci::transfer::TransferMechanism;
use proptest::prelude::*;
use simkit::SimTime;
use std::collections::VecDeque;
use taskgraph::TaskId;
use unifaas::data::{DataManager, TransferLoad, XferId};

const N_EPS: usize = 3;
const MAX_RETRIES: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq)]
enum RefState {
    Queued,
    Active,
    Done,
    Failed,
}

#[derive(Clone, Debug)]
struct RefXfer {
    object: DataId,
    src: EndpointId,
    dst: EndpointId,
    bytes: u64,
    attempts: u32,
    interested: Vec<TaskId>,
    state: RefState,
}

/// The naive model: flat vectors, no indexes, aggregates recomputed on
/// demand. Transfer ids align with the real manager's because both
/// allocate them in creation order.
#[derive(Default)]
struct RefModel {
    /// (bytes, replicas) per object id; index = DataId.0.
    objects: Vec<(u64, Vec<EndpointId>)>,
    xfers: Vec<RefXfer>,
    /// FIFO queue per ordered pair (src * N_EPS + dst).
    queues: Vec<VecDeque<usize>>,
    max_concurrent: usize,
    bytes_moved: u64,
}

impl RefModel {
    fn new(max_concurrent: usize) -> Self {
        RefModel {
            queues: (0..N_EPS * N_EPS).map(|_| VecDeque::new()).collect(),
            max_concurrent,
            ..RefModel::default()
        }
    }

    fn present_at(&self, obj: DataId, ep: EndpointId) -> bool {
        self.objects[obj.0 as usize].1.contains(&ep)
    }

    /// Uniform topology: every remote link is equal, so the best source is
    /// simply the lowest-id replica (the manager's documented tie-break).
    fn best_source(&self, obj: DataId) -> EndpointId {
        *self.objects[obj.0 as usize].1.iter().min().unwrap()
    }

    fn active_on(&self, pid: usize) -> usize {
        self.xfers
            .iter()
            .filter(|x| x.state == RefState::Active && x.src.index() * N_EPS + x.dst.index() == pid)
            .count()
    }

    /// Starts queued transfers while the pair has concurrency headroom;
    /// returns the started transfer ids in order.
    fn pump(&mut self, pid: usize) -> Vec<usize> {
        let mut started = Vec::new();
        while self.active_on(pid) < self.max_concurrent {
            let Some(i) = self.queues[pid].pop_front() else {
                break;
            };
            self.xfers[i].state = RefState::Active;
            started.push(i);
        }
        started
    }

    /// Mirrors `request_stage`; returns (missing, started ids).
    fn request_stage(
        &mut self,
        task: TaskId,
        inputs: &[DataId],
        dst: EndpointId,
    ) -> (usize, Vec<usize>) {
        let mut missing = 0;
        let mut started = Vec::new();
        for &obj in inputs {
            if self.present_at(obj, dst) {
                continue;
            }
            missing += 1;
            if let Some(x) = self.xfers.iter_mut().find(|x| {
                x.object == obj
                    && x.dst == dst
                    && matches!(x.state, RefState::Queued | RefState::Active)
            }) {
                if !x.interested.contains(&task) {
                    x.interested.push(task);
                }
                continue;
            }
            let src = self.best_source(obj);
            let bytes = self.objects[obj.0 as usize].0;
            let pid = src.index() * N_EPS + dst.index();
            self.xfers.push(RefXfer {
                object: obj,
                src,
                dst,
                bytes,
                attempts: 0,
                interested: vec![task],
                state: RefState::Queued,
            });
            let i = self.xfers.len() - 1;
            self.queues[pid].push_back(i);
            started.extend(self.pump(pid));
        }
        (missing, started)
    }

    /// Mirrors `complete`; returns (tasks_to_check, failed_tasks,
    /// follow-up started ids).
    fn complete(&mut self, i: usize, failed: bool) -> (Vec<TaskId>, Vec<TaskId>, Vec<usize>) {
        assert_eq!(self.xfers[i].state, RefState::Active, "model out of sync");
        let pid = self.xfers[i].src.index() * N_EPS + self.xfers[i].dst.index();
        let mut to_check = Vec::new();
        let mut failed_tasks = Vec::new();
        if failed {
            let retry = self.xfers[i].attempts < MAX_RETRIES;
            self.xfers[i].attempts += 1;
            if retry {
                self.xfers[i].state = RefState::Queued;
                self.queues[pid].push_back(i);
            } else {
                self.xfers[i].state = RefState::Failed;
                failed_tasks = self.xfers[i].interested.clone();
            }
        } else {
            self.xfers[i].state = RefState::Done;
            to_check = self.xfers[i].interested.clone();
            let (obj, dst, bytes) = (self.xfers[i].object, self.xfers[i].dst, self.xfers[i].bytes);
            let replicas = &mut self.objects[obj.0 as usize].1;
            if !replicas.contains(&dst) {
                replicas.push(dst);
            }
            self.bytes_moved += bytes;
        }
        let started = self.pump(pid);
        (to_check, failed_tasks, started)
    }

    fn outstanding(&self) -> usize {
        self.xfers
            .iter()
            .filter(|x| matches!(x.state, RefState::Queued | RefState::Active))
            .count()
    }

    fn backlog(&self, src: EndpointId, dst: EndpointId) -> u64 {
        self.xfers
            .iter()
            .filter(|x| {
                x.src == src
                    && x.dst == dst
                    && matches!(x.state, RefState::Queued | RefState::Active)
            })
            .map(|x| x.bytes)
            .sum()
    }

    fn active_ids(&self) -> Vec<usize> {
        (0..self.xfers.len())
            .filter(|&i| self.xfers[i].state == RefState::Active)
            .collect()
    }
}

/// One raw step of the driver; interpreted against the current state so
/// every generated sequence is valid (and shrinks well).
#[derive(Clone, Debug)]
enum Op {
    /// Register a fresh object of `bytes` at endpoint `home % N_EPS`.
    Register { bytes: u64, home: u8 },
    /// Stage a pseudo-random subset of known objects (`mask`) for the next
    /// task id at endpoint `dst % N_EPS`.
    Stage { mask: u64, dst: u8 },
    /// Complete the (`pick % active`)-th active transfer; `failed` is the
    /// fault injector's draw.
    Complete { pick: u8, failed: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..64 << 20, 0u8..8).prop_map(|(bytes, home)| Op::Register { bytes, home }),
        (0u64..u64::MAX, 0u8..8).prop_map(|(mask, dst)| Op::Stage { mask, dst }),
        (0u8..255, 0u8..2).prop_map(|(pick, failed)| Op::Complete {
            pick,
            failed: failed == 1
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn data_manager_matches_flat_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let params = TransferMechanism::Globus.default_params(); // max_concurrent = 4
        let max_concurrent = params.max_concurrent;
        let mut dm = DataManager::new(
            NetworkTopology::uniform(N_EPS, Link::wan()),
            params,
            MAX_RETRIES,
        );
        let mut model = RefModel::new(max_concurrent);
        let mut next_task = 0u32;
        let mut now_s = 0u64;

        for op in ops {
            now_s += 1;
            let now = SimTime::from_secs(now_s);
            match op {
                Op::Register { bytes, home } => {
                    let id = DataId(model.objects.len() as u64);
                    let ep = EndpointId((home as usize % N_EPS) as u16);
                    dm.store.register(id, bytes, ep);
                    model.objects.push((bytes, vec![ep]));
                }
                Op::Stage { mask, dst } => {
                    if model.objects.is_empty() {
                        continue;
                    }
                    let dst = EndpointId((dst as usize % N_EPS) as u16);
                    let inputs: Vec<DataId> = (0..model.objects.len() as u64)
                        .filter(|i| mask & (1 << (i % 64)) != 0)
                        .map(DataId)
                        .collect();
                    let task = TaskId(next_task);
                    next_task += 1;
                    let req = dm.request_stage(task, &inputs, dst, now);
                    let (missing, started) = model.request_stage(task, &inputs, dst);
                    prop_assert_eq!(req.missing, missing, "missing-input count");
                    let real: Vec<usize> = req.started.iter().map(|s| s.id.0).collect();
                    prop_assert_eq!(real, started, "started set/order (FIFO)");
                }
                Op::Complete { pick, failed } => {
                    let active = model.active_ids();
                    if active.is_empty() {
                        continue;
                    }
                    let i = active[pick as usize % active.len()];
                    let out = dm.complete(XferId(i), now, failed);
                    let (to_check, failed_tasks, started) = model.complete(i, failed);
                    prop_assert_eq!(out.tasks_to_check, to_check, "tasks to re-check");
                    prop_assert_eq!(out.failed_tasks, failed_tasks, "failed tasks");
                    let real: Vec<usize> = out.started.iter().map(|s| s.id.0).collect();
                    prop_assert_eq!(real, started, "follow-up starts (FIFO)");
                    prop_assert_eq!(out.observation.is_some(), !failed, "observation on success only");
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(dm.transfers_outstanding(), model.outstanding());
            prop_assert_eq!(dm.bytes_moved(), model.bytes_moved);
            for s in 0..N_EPS {
                for d in 0..N_EPS {
                    let (s, d) = (EndpointId(s as u16), EndpointId(d as u16));
                    prop_assert_eq!(
                        dm.backlog_bytes(s, d),
                        model.backlog(s, d),
                        "backlog for pair {:?}->{:?}", s, d
                    );
                }
            }
            for pid in 0..N_EPS * N_EPS {
                prop_assert!(
                    model.active_on(pid) <= max_concurrent,
                    "pair concurrency cap exceeded"
                );
            }
        }
    }
}
