//! Property-based tests on the full simulated runtime: random workflows on
//! random federations must always complete, and the reports must satisfy
//! physical invariants.

use proptest::prelude::*;
use taskgraph::traverse::critical_path_seconds;
use taskgraph::workloads::random::{generate, RandomDagParams};
use unifaas::prelude::*;

fn arb_strategy() -> impl Strategy<Value = SchedulingStrategy> {
    prop_oneof![
        Just(SchedulingStrategy::Capacity),
        Just(SchedulingStrategy::Locality),
        Just(SchedulingStrategy::Dha { rescheduling: true }),
        Just(SchedulingStrategy::Dha {
            rescheduling: false
        }),
    ]
}

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_workflows_always_complete(
        strategy in arb_strategy(),
        layers in 1usize..5,
        width in 1usize..10,
        edge_prob in 0.1f64..0.8,
        seed in 0u64..10_000,
        workers_a in 1usize..20,
        workers_b in 0usize..10,
        speed_b in 0.5f64..2.0,
    ) {
        let dag = generate(&RandomDagParams {
            n_layers: layers,
            min_width: 1,
            max_width: width,
            edge_prob,
            mean_seconds: 20.0,
            mean_output_bytes: 20 << 20, // above the inline limit: real staging
            seed,
        });
        let n = dag.len();
        let cp = critical_path_seconds(&dag);
        let total = dag.total_compute_seconds();

        let mut builder = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), workers_a));
        if workers_b > 0 {
            builder = builder.endpoint(EndpointConfig::new(
                "b",
                ClusterSpec::uniform("b", speed_b),
                workers_b,
            ));
        }
        let cfg = builder.strategy(strategy.clone()).seed(seed).build();

        let report = SimRuntime::new(cfg, dag)
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?} seed={seed}: {e}"));

        prop_assert_eq!(report.tasks_completed, n);
        prop_assert_eq!(report.failed_attempts, 0);

        // Physics: makespan is bounded below by the critical path on the
        // fastest endpoint (minus noise slack) and above by everything
        // serialized on the slowest single worker plus generous overheads.
        let fastest = speed_b.max(1.0);
        prop_assert!(
            report.makespan.as_secs_f64() >= cp / fastest * 0.85,
            "makespan {} below critical path bound {}",
            report.makespan, cp / fastest
        );
        let slowest = if workers_b > 0 { speed_b.min(1.0) } else { 1.0 };
        let upper = total / slowest * 1.5 + 600.0 + n as f64 * 2.0;
        prop_assert!(
            report.makespan.as_secs_f64() <= upper,
            "makespan {} above upper bound {upper}",
            report.makespan
        );

        // Utilization is a fraction.
        let u = report.mean_utilization();
        prop_assert!((0.0..=1.0).contains(&u));

        // Tasks-per-endpoint accounting adds up.
        let placed: usize = report.tasks_per_endpoint.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(placed, n);
    }

    #[test]
    fn fault_injection_never_loses_tasks(
        strategy in arb_strategy(),
        transfer_p in 0.0f64..0.25,
        task_p in 0.0f64..0.2,
        seed in 0u64..10_000,
    ) {
        let dag = generate(&RandomDagParams {
            n_layers: 3,
            min_width: 2,
            max_width: 6,
            edge_prob: 0.4,
            mean_seconds: 10.0,
            mean_output_bytes: 15 << 20,
            seed,
        });
        let n = dag.len();
        let cfg = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 8))
            .endpoint(EndpointConfig::new("b", ClusterSpec::taiyi(), 8))
            .strategy(strategy)
            .faults(transfer_p, task_p)
            .retries(25, 25)
            .seed(seed)
            .build();
        let report = SimRuntime::new(cfg, dag).run().unwrap();
        prop_assert_eq!(report.tasks_completed, n);
    }

    /// The event engine offers two execution-strategy axes that must never
    /// change semantics: single-queue vs sharded, and calendar-wheel vs
    /// binary-heap reference ordering. Across random topologies, seeds and
    /// outage windows, all four combinations must deliver the exact same
    /// event sequence — witnessed by equal determinism digests (which
    /// cover event and decision counts, placements, makespan and transfer
    /// totals).
    #[test]
    fn engine_variants_match_single_shard_wheel(
        strategy in arb_strategy(),
        layers in 1usize..5,
        width in 1usize..8,
        edge_prob in 0.1f64..0.8,
        seed in 0u64..10_000,
        shards in 2usize..9,
        outage_ep in 0usize..3, // 2 = no outage
        outage_from in 50u64..500,
        outage_len in 50u64..500,
    ) {
        let outage = (outage_ep < 2).then_some((outage_ep, outage_from, outage_len));
        let dag = generate(&RandomDagParams {
            n_layers: layers,
            min_width: 1,
            max_width: width,
            edge_prob,
            mean_seconds: 15.0,
            mean_output_bytes: 20 << 20,
            seed,
        });
        let build = |engine_shards: usize, reference_queue: bool| {
            let mut b = Config::builder()
                .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 6))
                .endpoint(EndpointConfig::new("b", ClusterSpec::taiyi(), 4))
                .strategy(strategy.clone())
                .retries(25, 25)
                .seed(seed)
                .engine_shards(engine_shards)
                .engine_reference_queue(reference_queue);
            if let Some((ep, from, len)) = outage {
                b = b.outage(ep, from, from + len);
            }
            b.build()
        };
        let single = SimRuntime::new(build(1, false), dag.clone()).run().unwrap();
        for (engine_shards, reference_queue) in [(1, true), (shards, false), (shards, true)] {
            let other = SimRuntime::new(build(engine_shards, reference_queue), dag.clone())
                .run()
                .unwrap();
            prop_assert_eq!(
                single.determinism_digest(),
                other.determinism_digest(),
                "engine variant diverged (seed={}, shards={}, reference_queue={}, outage={:?})",
                seed, engine_shards, reference_queue, outage
            );
            prop_assert_eq!(single.events_processed, other.events_processed);
            prop_assert_eq!(single.makespan, other.makespan);
        }
    }

    /// The SoA task arena as a model target: `validate_counters` makes
    /// the runtime re-derive its aggregate counters from a full arena
    /// scan on every periodic tick and panic on drift, so completing a
    /// random faulty run under it checks the arena's per-task state
    /// machine against the event stream. Running twice must also
    /// reproduce the digest bit-for-bit (arena layout cannot leak
    /// iteration-order nondeterminism).
    #[test]
    fn arena_counters_reconcile_under_faults(
        strategy in arb_strategy(),
        transfer_p in 0.0f64..0.2,
        task_p in 0.0f64..0.15,
        seed in 0u64..10_000,
        outage_ep in 0usize..3, // 2 = no outage
        outage_from in 50u64..400,
        outage_len in 50u64..400,
    ) {
        let outage = (outage_ep < 2).then_some((outage_ep, outage_from, outage_len));
        let dag = generate(&RandomDagParams {
            n_layers: 3,
            min_width: 2,
            max_width: 6,
            edge_prob: 0.4,
            mean_seconds: 10.0,
            mean_output_bytes: 15 << 20,
            seed,
        });
        let n = dag.len();
        let build = || {
            let mut b = Config::builder()
                .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 8))
                .endpoint(EndpointConfig::new("b", ClusterSpec::taiyi(), 8))
                .strategy(strategy.clone())
                .faults(transfer_p, task_p)
                .retries(25, 25)
                .seed(seed)
                .validate_counters(true);
            if let Some((ep, from, len)) = outage {
                b = b.outage(ep, from, from + len);
            }
            b.build()
        };
        let a = SimRuntime::new(build(), dag.clone()).run().unwrap();
        let b = SimRuntime::new(build(), dag).run().unwrap();
        prop_assert_eq!(a.tasks_completed, n);
        prop_assert_eq!(a.determinism_digest(), b.determinism_digest());
    }
}
