//! Property-based tests on the full simulated runtime: random workflows on
//! random federations must always complete, and the reports must satisfy
//! physical invariants.

use proptest::prelude::*;
use taskgraph::traverse::critical_path_seconds;
use taskgraph::workloads::random::{generate, RandomDagParams};
use unifaas::prelude::*;

fn arb_strategy() -> impl Strategy<Value = SchedulingStrategy> {
    prop_oneof![
        Just(SchedulingStrategy::Capacity),
        Just(SchedulingStrategy::Locality),
        Just(SchedulingStrategy::Dha { rescheduling: true }),
        Just(SchedulingStrategy::Dha {
            rescheduling: false
        }),
    ]
}

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_workflows_always_complete(
        strategy in arb_strategy(),
        layers in 1usize..5,
        width in 1usize..10,
        edge_prob in 0.1f64..0.8,
        seed in 0u64..10_000,
        workers_a in 1usize..20,
        workers_b in 0usize..10,
        speed_b in 0.5f64..2.0,
    ) {
        let dag = generate(&RandomDagParams {
            n_layers: layers,
            min_width: 1,
            max_width: width,
            edge_prob,
            mean_seconds: 20.0,
            mean_output_bytes: 20 << 20, // above the inline limit: real staging
            seed,
        });
        let n = dag.len();
        let cp = critical_path_seconds(&dag);
        let total = dag.total_compute_seconds();

        let mut builder = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), workers_a));
        if workers_b > 0 {
            builder = builder.endpoint(EndpointConfig::new(
                "b",
                ClusterSpec::uniform("b", speed_b),
                workers_b,
            ));
        }
        let cfg = builder.strategy(strategy.clone()).seed(seed).build();

        let report = SimRuntime::new(cfg, dag)
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?} seed={seed}: {e}"));

        prop_assert_eq!(report.tasks_completed, n);
        prop_assert_eq!(report.failed_attempts, 0);

        // Physics: makespan is bounded below by the critical path on the
        // fastest endpoint (minus noise slack) and above by everything
        // serialized on the slowest single worker plus generous overheads.
        let fastest = speed_b.max(1.0);
        prop_assert!(
            report.makespan.as_secs_f64() >= cp / fastest * 0.85,
            "makespan {} below critical path bound {}",
            report.makespan, cp / fastest
        );
        let slowest = if workers_b > 0 { speed_b.min(1.0) } else { 1.0 };
        let upper = total / slowest * 1.5 + 600.0 + n as f64 * 2.0;
        prop_assert!(
            report.makespan.as_secs_f64() <= upper,
            "makespan {} above upper bound {upper}",
            report.makespan
        );

        // Utilization is a fraction.
        let u = report.mean_utilization();
        prop_assert!((0.0..=1.0).contains(&u));

        // Tasks-per-endpoint accounting adds up.
        let placed: usize = report.tasks_per_endpoint.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(placed, n);
    }

    #[test]
    fn fault_injection_never_loses_tasks(
        strategy in arb_strategy(),
        transfer_p in 0.0f64..0.25,
        task_p in 0.0f64..0.2,
        seed in 0u64..10_000,
    ) {
        let dag = generate(&RandomDagParams {
            n_layers: 3,
            min_width: 2,
            max_width: 6,
            edge_prob: 0.4,
            mean_seconds: 10.0,
            mean_output_bytes: 15 << 20,
            seed,
        });
        let n = dag.len();
        let cfg = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 8))
            .endpoint(EndpointConfig::new("b", ClusterSpec::taiyi(), 8))
            .strategy(strategy)
            .faults(transfer_p, task_p)
            .retries(25, 25)
            .seed(seed)
            .build();
        let report = SimRuntime::new(cfg, dag).run().unwrap();
        prop_assert_eq!(report.tasks_completed, n);
    }
}
