//! Property tests for the divergence doctor: for any perturbation
//! position, any engine shard count and either queue kind, flipping one
//! event's timestamp mid-journal must be localized by the doctor to
//! exactly that record — never a neighbor, never a whole-chunk smear.

use fedci::hardware::ClusterSpec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use simkit::journal::Journal;
use taskgraph::{Dag, TaskId, TaskSpec};
use unifaas::config::{Config, EndpointConfig, SchedulingStrategy};
use unifaas::obs::{doctor, perturb_journal, render_doctor, DoctorReport};
use unifaas::SimRuntime;

fn config(shards: usize, reference: bool) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("fast", ClusterSpec::taiyi(), 4))
        .endpoint(EndpointConfig::new("slow", ClusterSpec::qiming(), 2))
        .strategy(SchedulingStrategy::Dha { rescheduling: true })
        .engine_shards(shards)
        .engine_reference_queue(reference)
        .build()
}

fn small_dag() -> Dag {
    let mut dag = Dag::new();
    let f = dag.register_function("work");
    let g = dag.register_function("merge");
    let root = dag.add_task(TaskSpec::compute(f, 1.0).with_output_bytes(1 << 20), &[]);
    let layer: Vec<TaskId> = (0..10)
        .map(|i| {
            dag.add_task(
                TaskSpec::compute(f, 1.0 + (i % 3) as f64).with_output_bytes(1 << 20),
                &[root],
            )
        })
        .collect();
    dag.add_task(TaskSpec::compute(g, 1.0), &layer);
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn doctor_localizes_any_single_event_perturbation(
        pos_frac in 0.0f64..1.0,
        shards in prop_oneof![Just(1usize), Just(3usize)],
        reference in prop_oneof![Just(false), Just(true)],
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ufprop-{}-{shards}-{reference}-{}",
            std::process::id(),
            (pos_frac * 1e9) as u64
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.journal");
        SimRuntime::new(config(shards, reference), small_dag())
            .with_journal(&base)
            .run()
            .unwrap();
        let a = Journal::open(&base).unwrap();
        prop_assert!(a.total_records() > 0);
        let target = ((pos_frac * (a.total_records() - 1) as f64) as u64)
            .min(a.total_records() - 1);
        let perturbed = dir.join("perturbed.journal");
        perturb_journal(&base, &perturbed, target).unwrap();
        let b = Journal::open(&perturbed).unwrap();

        // Self-comparison is identical; perturbed comparison diverges at
        // exactly the injected record, in both argument orders.
        prop_assert!(doctor(&a, &a).is_identical());
        for (x, y) in [(&a, &b), (&b, &a)] {
            let report = doctor(x, y);
            match &report {
                DoctorReport::Diverged(d) => {
                    prop_assert_eq!(d.index, target, "{}", render_doctor(&report));
                    let (ra, rb) = (d.a.unwrap(), d.b.unwrap());
                    prop_assert_eq!(ra.at_us.abs_diff(rb.at_us), 1);
                    prop_assert_eq!(ra.kind, rb.kind);
                }
                DoctorReport::Identical { .. } => {
                    return Err(TestCaseError::fail(format!(
                        "perturbation at {target} not detected"
                    )));
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
