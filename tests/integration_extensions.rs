//! Integration tests for the extension features layered on top of the
//! paper's core: DHA ablation knobs, coordinated scaling, alternative
//! profiler models, transfer probing, the ensemble workload, and the CLI
//! spec pipeline.

use simkit::{SimDuration, SimTime};
use taskgraph::workloads::ensemble::{generate as ensemble, EnsembleParams};
use taskgraph::{Dag, TaskSpec};
use unifaas::config::{KnowledgeMode, ScalingConfig, ScalingPolicyKind, SchedulingStrategy};
use unifaas::prelude::*;
use unifaas::profile::ModelFamily;

fn dynamic_pool(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 40))
        .endpoint(EndpointConfig::new("b", ClusterSpec::taiyi(), 10))
        .strategy(strategy)
        .capacity_event(100, 1, 60)
        .build()
}

fn bag(n: usize, secs: f64, out: u64) -> Dag {
    let mut dag = Dag::new();
    let f = dag.register_function("w");
    for _ in 0..n {
        dag.add_task(TaskSpec::compute(f, secs).with_output_bytes(out), &[]);
    }
    dag
}

#[test]
fn dha_custom_knobs_all_complete_and_delay_matters() {
    let full = SimRuntime::new(
        dynamic_pool(SchedulingStrategy::DhaCustom {
            rescheduling: true,
            delay_dispatch: true,
            steal_threshold_pct: 90,
        }),
        bag(300, 40.0, 12 << 20),
    )
    .run()
    .unwrap();
    let no_delay = SimRuntime::new(
        dynamic_pool(SchedulingStrategy::DhaCustom {
            rescheduling: true,
            delay_dispatch: false,
            steal_threshold_pct: 90,
        }),
        bag(300, 40.0, 12 << 20),
    )
    .run()
    .unwrap();
    assert_eq!(full.tasks_completed, 300);
    assert_eq!(no_delay.tasks_completed, 300);
    assert_eq!(full.scheduler, "DHA");
    assert_eq!(no_delay.scheduler, "DHA-no-delay");
    // The variants must actually behave differently under contention.
    assert_ne!(
        (full.makespan, full.events_processed),
        (no_delay.makespan, no_delay.events_processed),
        "delay knob had no effect"
    );
    // With capacity arriving mid-run, the delayed variant (bigger
    // re-schedulable pool) should not be slower by more than noise.
    assert!(
        full.makespan.as_secs_f64() <= no_delay.makespan.as_secs_f64() * 1.1,
        "full {} vs no-delay {}",
        full.makespan,
        no_delay.makespan
    );
}

#[test]
fn coordinated_scaling_provisions_less_for_same_work() {
    let run = |policy: ScalingPolicyKind| {
        let mut cfg = Config::builder()
            .endpoint(EndpointConfig::new("e", ClusterSpec::lab_cluster(), 0).elastic(0, 100, 10))
            .strategy(SchedulingStrategy::Locality)
            .build();
        cfg.scaling = ScalingConfig {
            enabled: true,
            idle_timeout: SimDuration::from_secs(20),
            interval: SimDuration::from_secs(1),
            policy,
        };
        let report = SimRuntime::new(cfg, bag(50, 30.0, 0)).run().unwrap();
        assert_eq!(report.tasks_completed, 50);
        let end = SimTime::ZERO + report.makespan + SimDuration::from_secs(40);
        (
            report.makespan.as_secs_f64(),
            report.series.active_total.integral(SimTime::ZERO, end),
        )
    };
    let (default_mk, default_ws) = run(ScalingPolicyKind::Default);
    let (coord_mk, coord_ws) = run(ScalingPolicyKind::Coordinated {
        target_drain_seconds: 120.0,
    });
    // Coordinated provisions fewer worker-seconds at a bounded makespan
    // cost (it deliberately trades some latency for efficiency).
    assert!(
        coord_ws < default_ws,
        "coordinated {coord_ws} should provision less than default {default_ws}"
    );
    assert!(
        coord_mk < default_mk * 3.0,
        "coordinated makespan {coord_mk} vs default {default_mk}"
    );
}

#[test]
fn all_model_families_complete_in_learned_mode() {
    for family in [
        ModelFamily::RandomForest,
        ModelFamily::Linear,
        ModelFamily::BayesianLinear,
    ] {
        let mut cfg = dynamic_pool(SchedulingStrategy::Dha { rescheduling: true });
        cfg.knowledge = KnowledgeMode::Learned;
        cfg.model_family = family;
        let report = SimRuntime::new(cfg, bag(150, 20.0, 12 << 20))
            .run()
            .unwrap();
        assert_eq!(report.tasks_completed, 150, "{family:?}");
    }
}

#[test]
fn probing_gives_learned_dha_transfer_awareness_from_the_start() {
    // Two endpoints; one holds a big replica of a shared input. With
    // probing, the learned transfer model knows moving data is expensive
    // from task one.
    let run = |probe: bool| {
        let mut cfg = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 4))
            .endpoint(EndpointConfig::new("b", ClusterSpec::qiming(), 4))
            .strategy(SchedulingStrategy::Dha {
                rescheduling: false,
            })
            .build();
        cfg.knowledge = KnowledgeMode::Learned;
        cfg.probe_transfers = probe;
        let mut dag = Dag::new();
        let f = dag.register_function("p");
        let g = dag.register_function("c");
        let root = dag.add_task(TaskSpec::compute(f, 5.0).with_output_bytes(500 << 20), &[]);
        for _ in 0..8 {
            dag.add_task(TaskSpec::compute(g, 10.0), &[root]);
        }
        SimRuntime::new(cfg, dag).run().unwrap()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.tasks_completed, 9);
    assert_eq!(without.tasks_completed, 9);
    // With probing the consumers cluster near the 500 MB file; without it,
    // cold-start estimates may scatter them. Probing must never move MORE.
    assert!(
        with.transfer_bytes <= without.transfer_bytes,
        "probed {} vs unprobed {}",
        with.transfer_bytes,
        without.transfer_bytes
    );
}

#[test]
fn ensemble_workload_runs_under_every_scheduler() {
    let dag = || {
        ensemble(&EnsembleParams {
            rounds: 4,
            batch: 30,
            ..Default::default()
        })
    };
    for strategy in [
        SchedulingStrategy::Capacity,
        SchedulingStrategy::Locality,
        SchedulingStrategy::Dha { rescheduling: true },
    ] {
        let report = SimRuntime::new(dynamic_pool(strategy.clone()), dag())
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(report.tasks_completed, 124, "{strategy:?}");
        // The train barrier serializes rounds: makespan must exceed
        // 4 × (sim + train) on the fastest endpoint.
        let floor = 4.0 * (120.0 + 90.0) / 1.10 * 0.6; // generous slack for cv
        assert!(
            report.makespan.as_secs_f64() > floor,
            "{strategy:?}: {} <= {floor}",
            report.makespan
        );
    }
}

#[test]
fn cli_spec_roundtrip_runs_ensemble() {
    let spec = unifaas_cli::parse_spec(
        "endpoint a taiyi 50\nendpoint b lab 10\nstrategy dha\nseed 5\nworkload ensemble rounds=3 batch=20\n",
    )
    .unwrap();
    let report = SimRuntime::new(spec.config, spec.workload.build())
        .run()
        .unwrap();
    assert_eq!(report.tasks_completed, 63);
}
