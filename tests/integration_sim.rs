//! End-to-end integration tests: full workflows through the simulated
//! federation, spanning every crate in the workspace.

use fedci::hardware::ClusterSpec;
use fedci::network::{Link, NetworkTopology};
use simkit::{SimDuration, SimTime};
use taskgraph::traverse::critical_path_seconds;
use taskgraph::workloads::{drug, montage, stress};
use unifaas::config::KnowledgeMode;
use unifaas::monitor::HistoryDb;
use unifaas::prelude::*;

fn testbed(strategy: SchedulingStrategy) -> Config {
    Config::builder()
        .endpoint(EndpointConfig::new("Taiyi", ClusterSpec::taiyi(), 64))
        .endpoint(EndpointConfig::new("Qiming", ClusterSpec::qiming(), 24))
        .endpoint(EndpointConfig::new("Dept", ClusterSpec::dept_cluster(), 8))
        .endpoint(EndpointConfig::new("Lab", ClusterSpec::lab_cluster(), 8))
        .strategy(strategy)
        .build()
}

fn all_strategies() -> Vec<SchedulingStrategy> {
    vec![
        SchedulingStrategy::Capacity,
        SchedulingStrategy::Locality,
        SchedulingStrategy::Dha { rescheduling: true },
        SchedulingStrategy::Dha {
            rescheduling: false,
        },
    ]
}

#[test]
fn drug_screening_completes_under_every_scheduler() {
    let dag = drug::generate(&drug::DrugParams::small(60)); // 241 tasks
    for strategy in all_strategies() {
        let report = SimRuntime::new(testbed(strategy.clone()), dag.clone())
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(report.tasks_completed, 241, "{strategy:?}");
        assert_eq!(report.failed_attempts, 0, "{strategy:?}");
        // Makespan can never beat the critical path on the fastest cluster,
        // modulo execution noise (normal around 1.0, cv 0.02) which lets a
        // chain of tasks finish a few percent early.
        let lower = critical_path_seconds(&dag) / 1.10 * 0.95;
        assert!(
            report.makespan.as_secs_f64() >= lower,
            "{strategy:?}: makespan {} below lower bound {lower}",
            report.makespan
        );
    }
}

#[test]
fn montage_completes_and_reaches_single_sink() {
    let dag = montage::generate(&montage::MontageParams::small(40)); // 206 tasks
    let n = dag.len();
    for strategy in all_strategies() {
        let report = SimRuntime::new(testbed(strategy.clone()), dag.clone())
            .run()
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(report.tasks_completed, n, "{strategy:?}");
    }
}

#[test]
fn dha_beats_capacity_under_dynamic_capacity() {
    // The Table V effect at small scale: a big capacity shift mid-run.
    let make = || {
        let mut dag = taskgraph::Dag::new();
        let f = dag.register_function("work");
        for _ in 0..400 {
            dag.add_task(TaskSpec::compute(f, 60.0).with_output_bytes(12 << 20), &[]);
        }
        dag
    };
    let run = |strategy| {
        let cfg = Config::builder()
            .endpoint(EndpointConfig::new("a", ClusterSpec::qiming(), 50))
            .endpoint(EndpointConfig::new("b", ClusterSpec::qiming(), 10))
            .strategy(strategy)
            .capacity_event(60, 1, 90) // b: 10 → 100 workers
            .capacity_event(120, 0, -40) // a: 50 → 10 workers
            .build();
        SimRuntime::new(cfg, make()).run().expect("run failed")
    };
    let capacity = run(SchedulingStrategy::Capacity);
    let dha = run(SchedulingStrategy::Dha { rescheduling: true });
    assert_eq!(capacity.tasks_completed, 400);
    assert_eq!(dha.tasks_completed, 400);
    assert!(
        dha.makespan.as_secs_f64() < capacity.makespan.as_secs_f64() * 0.8,
        "DHA {} should clearly beat Capacity {} when capacity shifts",
        dha.makespan,
        capacity.makespan
    );
}

#[test]
fn federating_more_endpoints_reduces_makespan() {
    // The headline claim: adding clusters to the pool speeds the workflow.
    let dag = || stress::bag_of_tasks(600, 30.0);
    let single = SimRuntime::new(
        Config::builder()
            .endpoint(EndpointConfig::new("only", ClusterSpec::qiming(), 50))
            .strategy(SchedulingStrategy::Dha { rescheduling: true })
            .build(),
        dag(),
    )
    .run()
    .unwrap();
    let federated = SimRuntime::new(
        testbed(SchedulingStrategy::Dha { rescheduling: true }),
        dag(),
    )
    .run()
    .unwrap();
    assert!(
        federated.makespan.as_secs_f64() < single.makespan.as_secs_f64() * 0.75,
        "federated {} vs single {}",
        federated.makespan,
        single.makespan
    );
}

#[test]
fn history_database_roundtrip_warms_learned_profiler() {
    // Run once in learned mode, persist the history DB, reload it for a
    // second run — the paper's "start a workflow by loading an existing
    // database".
    let dag = || drug::generate(&drug::DrugParams::small(30));
    let mut cfg = testbed(SchedulingStrategy::Dha { rescheduling: true });
    cfg.knowledge = KnowledgeMode::Learned;

    let first = SimRuntime::new(cfg.clone(), dag()).run().unwrap();
    assert_eq!(first.tasks_completed, 121);

    // Synthesize a history DB from a fresh monitor run by re-running and
    // capturing records via CSV persistence.
    let path = std::env::temp_dir().join("unifaas_integration_history.csv");
    {
        // The runtime doesn't expose its monitor after the run; emulate the
        // user flow by building a DB from a short profiling run's records.
        let mut db = HistoryDb::new();
        for i in 0..50 {
            db.push(unifaas::monitor::TaskRecord {
                function: "dock".into(),
                endpoint: fedci::endpoint::EndpointId(0),
                input_bytes: 20 << 20,
                duration_seconds: 200.0 + i as f64,
                output_bytes: 25 << 20,
                cores: 40,
                cpu_ghz: 2.4,
                ram_gb: 192,
                success: true,
            });
        }
        db.save_csv(&path).unwrap();
    }
    let loaded = HistoryDb::load_csv(&path).unwrap();
    assert_eq!(loaded.len(), 50);
    let warm = SimRuntime::new(cfg, dag())
        .with_history(loaded)
        .run()
        .unwrap();
    assert_eq!(warm.tasks_completed, 121);
    std::fs::remove_file(&path).ok();
}

#[test]
fn custom_network_topology_changes_transfer_costs() {
    let mut dag = taskgraph::Dag::new();
    let f = dag.register_function("producer");
    let g = dag.register_function("consumer");
    let a = dag.add_task(TaskSpec::compute(f, 5.0).with_output_bytes(200 << 20), &[]);
    dag.add_task(TaskSpec::compute(g, 5.0), &[a]);

    // Force producer and consumer onto different endpoints via Pinned.
    let cfg = |link: Link| {
        let c = Config::builder()
            .endpoint(EndpointConfig::new("p", ClusterSpec::qiming(), 1))
            .endpoint(EndpointConfig::new("c", ClusterSpec::qiming(), 1))
            .strategy(SchedulingStrategy::Pinned(vec![
                ("producer".into(), "p".into()),
                ("consumer".into(), "c".into()),
            ]))
            .build();
        let n = c.endpoints.len();
        (c, NetworkTopology::uniform(n, link))
    };
    let (slow_cfg, slow_net) = cfg(Link::wan());
    let slow = SimRuntime::new(slow_cfg, dag.clone())
        .with_network(slow_net)
        .run()
        .unwrap();
    let (fast_cfg, fast_net) = cfg(Link::lan());
    let fast = SimRuntime::new(fast_cfg, dag)
        .with_network(fast_net)
        .run()
        .unwrap();
    assert_eq!(slow.transfer_bytes, fast.transfer_bytes);
    assert!(
        slow.makespan.as_secs_f64() > fast.makespan.as_secs_f64() + 5.0,
        "WAN {} should be much slower than LAN {}",
        slow.makespan,
        fast.makespan
    );
}

#[test]
fn rsync_and_globus_mechanisms_both_work() {
    let mut dag = taskgraph::Dag::new();
    let f = dag.register_function("p");
    let g = dag.register_function("c");
    let a = dag.add_task(TaskSpec::compute(f, 2.0).with_output_bytes(50 << 20), &[]);
    dag.add_task(TaskSpec::compute(g, 2.0), &[a]);
    for mech in [TransferMechanism::Globus, TransferMechanism::Rsync] {
        let cfg = Config::builder()
            .endpoint(EndpointConfig::new("p", ClusterSpec::qiming(), 1))
            .endpoint(EndpointConfig::new("c", ClusterSpec::qiming(), 1))
            .strategy(SchedulingStrategy::Pinned(vec![
                ("p".into(), "p".into()),
                ("c".into(), "c".into()),
            ]))
            .transfer(mech)
            .build();
        let report = SimRuntime::new(cfg, dag.clone()).run().unwrap();
        assert_eq!(report.tasks_completed, 2);
        assert_eq!(report.transfer_bytes, 50 << 20);
    }
}

#[test]
fn fault_injection_end_to_end_with_both_failure_kinds() {
    let mut cfg = testbed(SchedulingStrategy::Locality);
    cfg.transfer_failure_prob = 0.15;
    cfg.task_failure_prob = 0.1;
    cfg.max_transfer_retries = 8;
    cfg.max_task_attempts = 8;
    let dag = drug::generate(&drug::DrugParams::small(20));
    let report = SimRuntime::new(cfg, dag).run().unwrap();
    assert_eq!(report.tasks_completed, 81);
    assert!(report.failed_attempts > 0);
}

#[test]
fn dynamic_dag_with_capacity_events_and_elasticity() {
    let mut cfg = Config::builder()
        .endpoint(EndpointConfig::new("e", ClusterSpec::lab_cluster(), 4).elastic(4, 40, 4))
        .strategy(SchedulingStrategy::Locality)
        .capacity_event(100, 0, 6)
        .build();
    cfg.scaling.enabled = true;
    cfg.scaling.idle_timeout = SimDuration::from_secs(20);
    let mut rt = SimRuntime::new(cfg, stress::bag_of_tasks(40, 15.0));
    rt.inject_at(SimTime::from_secs(50), |dag| {
        let f = dag.register_function("late_wave");
        for _ in 0..30 {
            dag.add_task(TaskSpec::compute(f, 10.0), &[]);
        }
    });
    let report = rt.run().unwrap();
    assert_eq!(report.tasks_completed, 70);
}

#[test]
fn reports_are_deterministic_across_identical_runs() {
    let run = || {
        SimRuntime::new(
            testbed(SchedulingStrategy::Dha { rescheduling: true }),
            montage::generate(&montage::MontageParams::small(20)),
        )
        .run()
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfer_bytes, b.transfer_bytes);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.tasks_per_endpoint, b.tasks_per_endpoint);
}
