//! Workspace-level integration of the fabric stack: the `Fabric` trait,
//! the byte-level `FabricRuntime` client path, and the wire protocol via
//! an in-thread daemon (connect mode — the spawn/SIGKILL paths live in
//! `crates/cli/tests`, where the daemon binary is available).

use fedci::fabric::{assemble_input, Fabric, FabricTiming, FnRegistry, JobSpec, ThreadedFabric};
use fedci::process::{
    spawn_daemon_thread, DaemonConfig, EndpointMode, ProcessEndpointSpec, ProcessFabric,
    ProcessFabricConfig,
};
use std::sync::Arc;
use std::time::Duration;
use unifaas::runtime::fabric::FabricRuntime;
use unifaas::runtime::live::LiveRetryPolicy;
use unifaas_cli::fabricrun::{reference_outcome, run_workload, FabricWorkload};

#[test]
fn builtin_registry_covers_the_demo_functions() {
    let reg = FnRegistry::builtins();
    for name in ["echo", "fnv", "sum64", "sleep", "fail"] {
        assert!(reg.get(name).is_some(), "missing builtin {name}");
    }
    let fnv = reg.get("fnv").unwrap();
    let out = fnv(b"hello").unwrap();
    assert_eq!(out.len(), 8, "fnv output is a 64-bit digest");
    let fail = reg.get("fail").unwrap();
    assert_eq!(fail(b"boom").unwrap_err(), "boom");
}

#[test]
fn assemble_input_orders_deps_before_payload() {
    let mut blobs = std::collections::HashMap::new();
    blobs.insert(7u64, Arc::new(b"AA".to_vec()));
    blobs.insert(9u64, Arc::new(b"BB".to_vec()));
    let job = JobSpec {
        task: 1,
        attempt: 1,
        function: Arc::from("echo"),
        deps: vec![9, 7],
        payload: b"CC".to_vec(),
    };
    assert_eq!(assemble_input(&blobs, &job).unwrap(), b"BBAACC");
    let missing = JobSpec {
        deps: vec![3],
        ..job
    };
    assert!(assemble_input(&blobs, &missing).unwrap_err().contains("3"));
}

#[test]
fn threaded_fabric_runs_the_reference_workload() {
    let w = FabricWorkload::new(80, 99);
    let fabric = Arc::new(ThreadedFabric::new(
        &[("a", 2), ("b", 2), ("c", 1)],
        &FabricTiming::fast(),
    ));
    let rt = FabricRuntime::new(fabric);
    let outcome = run_workload(&rt, &w);
    assert_eq!(outcome.failures, 0);
    let want = reference_outcome(&w);
    for (got, want) in outcome.results.iter().zip(&want) {
        assert_eq!(got.as_ref().unwrap().as_slice(), want.as_slice());
    }
}

#[test]
fn process_fabric_connect_mode_matches_threaded_digest() {
    let w = FabricWorkload::new(50, 7);
    let threaded = {
        let fabric = Arc::new(ThreadedFabric::new(&[("a", 2)], &FabricTiming::fast()));
        run_workload(&FabricRuntime::new(fabric), &w)
    };
    let daemon = spawn_daemon_thread(DaemonConfig::new("root-it", 2)).expect("daemon");
    let fabric = Arc::new(ProcessFabric::new(
        vec![ProcessEndpointSpec {
            name: "root-it".to_string(),
            workers: 2,
            mode: EndpointMode::Connect {
                addr: daemon.addr().to_string(),
            },
        }],
        ProcessFabricConfig {
            timing: FabricTiming::fast(),
            seed: 1,
            respawn: false,
            telemetry: false,
        },
    ));
    let rt =
        FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>).with_retry(LiveRetryPolicy {
            max_attempts: 4,
            task_timeout: Some(Duration::from_secs(5)),
            backoff: Duration::from_millis(2),
        });
    let process = run_workload(&rt, &w);
    fabric.shutdown();
    daemon.join().expect("daemon drains cleanly");
    assert_eq!(process.failures, 0);
    assert_eq!(
        process.digest, threaded.digest,
        "wire transport must not change results"
    );
}

#[test]
fn merged_timeline_is_causally_complete_over_the_wire() {
    let w = FabricWorkload::new(40, 11);
    let daemon = spawn_daemon_thread(DaemonConfig::new("obs-it", 2)).expect("daemon");
    let fabric = Arc::new(ProcessFabric::new(
        vec![ProcessEndpointSpec {
            name: "obs-it".to_string(),
            workers: 2,
            mode: EndpointMode::Connect {
                addr: daemon.addr().to_string(),
            },
        }],
        ProcessFabricConfig {
            timing: FabricTiming::fast(),
            seed: 3,
            respawn: false,
            telemetry: true,
        },
    ));
    let rt = FabricRuntime::new(Arc::clone(&fabric) as Arc<dyn Fabric>)
        .with_retry(LiveRetryPolicy {
            max_attempts: 4,
            task_timeout: Some(Duration::from_secs(5)),
            backoff: Duration::from_millis(2),
        })
        .with_trace(simkit::TraceLevel::Spans);
    let outcome = run_workload(&rt, &w);
    assert_eq!(outcome.failures, 0);
    let client = rt.take_client_tracer().expect("tracing enabled");
    fabric.shutdown();
    daemon.join().expect("daemon drains cleanly");

    // The drain flush delivered the daemon's full event stream: every
    // attempt has all four daemon stages, the clock synced, and the
    // merged chains are causally consistent within the stated bound.
    let tel = fabric.telemetry(0);
    assert!(
        tel.clocks.iter().any(|(g, _)| *g == 0),
        "generation 0 synced its clock: {:?}",
        tel.clocks
    );
    assert_eq!(tel.counters.dispatches, 40, "{:?}", tel.counters);
    assert_eq!(tel.dropped_batches, 0);

    let chains = unifaas::obs::attempt_chains(Some(&client), std::slice::from_ref(&tel));
    assert_eq!(chains.len(), 40, "one chain per task");
    for c in &chains {
        assert!(c.is_complete(), "incomplete chain {c:?}");
        assert!(c.synced);
    }
    let violations = unifaas::obs::causal_violations(&chains, 1_000);
    assert!(violations.is_empty(), "{violations:?}");

    // And the merged Perfetto timeline renders both sides.
    let merged = unifaas::obs::merge_process_timeline(Some(&client), std::slice::from_ref(&tel));
    let mut buf = Vec::new();
    merged.export_perfetto(&mut buf).unwrap();
    let json = String::from_utf8(buf).unwrap();
    assert!(json.contains("\"client\""), "client track exported");
    assert!(
        json.contains("obs-it gen0 (offset "),
        "daemon track labelled"
    );
    assert!(json.contains("d.exec"), "daemon exec spans exported");
}

#[test]
fn fabric_timing_validation_is_exposed_end_to_end() {
    let bad = FabricTiming {
        heartbeat_interval: Duration::from_secs(10),
        ..FabricTiming::default()
    };
    assert!(bad.validate().is_err(), "heartbeat >= suspect must fail");
    assert!(FabricTiming::default().validate().is_ok());
    assert!(FabricTiming::fast().validate().is_ok());
}
