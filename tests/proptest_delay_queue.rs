//! Property-based tests of the DHA delay queues ([`DelayQueues`]): under
//! arbitrary interleavings of pushes (staging completions), pops (idle
//! workers), and removals (task stealing, fault retries), dispatch order is
//! descending (priority, FIFO) per endpoint and removed tasks never
//! dispatch.

use fedci::endpoint::EndpointId;
use proptest::prelude::*;
use taskgraph::TaskId;
use unifaas::sched::queue::DelayQueues;

#[derive(Clone, Debug)]
enum Op {
    /// Staging completed: queue the task (moves it if already queued).
    Push { task: u32, ep: u16, prio: f64 },
    /// A worker on `ep` went idle: dispatch the best waiting task.
    Pop { ep: u16 },
    /// The task was stolen or removed: drop it wherever it waits.
    Remove { task: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24, 0u16..4, 0.0f64..100.0).prop_map(|(task, ep, prio)| Op::Push { task, ep, prio }),
        (0u16..4).prop_map(|ep| Op::Pop { ep }),
        (0u32..24).prop_map(|task| Op::Remove { task }),
    ]
}

/// Straight-line reference model: a flat list of live entries; pop scans
/// for the best (priority, then earliest push) entry on the endpoint.
#[derive(Default)]
struct Model {
    entries: Vec<(TaskId, EndpointId, f64, u64)>,
    next_token: u64,
}

impl Model {
    fn push(&mut self, task: TaskId, ep: EndpointId, prio: f64) {
        self.entries.retain(|e| e.0 != task);
        self.entries.push((task, ep, prio, self.next_token));
        self.next_token += 1;
    }

    fn pop(&mut self, ep: EndpointId) -> Option<TaskId> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.1 == ep)
            .max_by(|(_, a), (_, b)| {
                a.2.partial_cmp(&b.2).unwrap().then(b.3.cmp(&a.3)) // earlier push wins ties
            })
            .map(|(i, _)| i)?;
        Some(self.entries.remove(best).0)
    }

    fn remove(&mut self, task: TaskId) -> Option<EndpointId> {
        let i = self.entries.iter().position(|e| e.0 == task)?;
        Some(self.entries.remove(i).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let mut queues = DelayQueues::new();
        let mut model = Model::default();
        let mut removed: std::collections::HashSet<TaskId> =
            std::collections::HashSet::new();
        for op in ops {
            match op {
                Op::Push { task, ep, prio } => {
                    let (task, ep) = (TaskId(task), EndpointId(ep));
                    queues.push(task, ep, prio);
                    model.push(task, ep, prio);
                    removed.remove(&task);
                }
                Op::Pop { ep } => {
                    let ep = EndpointId(ep);
                    let got = queues.pop(ep);
                    let want = model.pop(ep);
                    prop_assert_eq!(
                        got, want,
                        "pop({}) diverged from the reference model", ep.0
                    );
                    if let Some(t) = got {
                        prop_assert!(
                            !removed.contains(&t),
                            "removed task {} was dispatched", t
                        );
                    }
                }
                Op::Remove { task } => {
                    let task = TaskId(task);
                    let got = queues.remove(task);
                    let want = model.remove(task);
                    prop_assert_eq!(got, want, "remove({}) diverged", task);
                    removed.insert(task);
                }
            }
            // Aggregate bookkeeping stays consistent at every step.
            prop_assert_eq!(queues.len(), model.entries.len());
            prop_assert_eq!(queues.is_empty(), model.entries.is_empty());
            for &(t, ep, _, _) in &model.entries {
                prop_assert_eq!(queues.position_of(t), Some(ep));
            }
        }
        // Drain everything that remains: full order must match per endpoint.
        for ep in 0..4u16 {
            let ep = EndpointId(ep);
            loop {
                let got = queues.pop(ep);
                let want = model.pop(ep);
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
            prop_assert!(queues.is_empty_at(ep));
        }
        prop_assert!(queues.is_empty());
    }

    #[test]
    fn drains_in_descending_priority_fifo(
        prios in proptest::collection::vec(0.0f64..10.0, 1..60)
    ) {
        let mut queues = DelayQueues::new();
        let ep = EndpointId(0);
        for (i, &p) in prios.iter().enumerate() {
            queues.push(TaskId(i as u32), ep, p);
        }
        let mut drained: Vec<(f64, u32)> = Vec::new();
        while let Some(t) = queues.pop(ep) {
            drained.push((prios[t.index()], t.0));
        }
        prop_assert_eq!(drained.len(), prios.len());
        for w in drained.windows(2) {
            let (pa, ta) = w[0];
            let (pb, tb) = w[1];
            prop_assert!(
                pa > pb || (pa == pb && ta < tb),
                "out of order: ({pa}, {ta}) before ({pb}, {tb})"
            );
        }
    }
}
